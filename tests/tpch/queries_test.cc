/** @file
 * Runs all 22 TPC-H queries through the baseline engine at SF 0.01 and
 * cross-checks several of them against independent brute-force
 * reference computations over the generated tables.
 */

#include <gtest/gtest.h>

#include <map>

#include "engine/executor.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::tpch {
namespace {

constexpr double kSf = 0.01;

class QueriesTest : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        db = new TpchDatabase(TpchDatabase::generate(cfg));
        catalog = new Catalog();
        for (auto t : {db->region, db->nation, db->supplier, db->customer,
                       db->part, db->partsupp, db->orders, db->lineitem})
            catalog->put(t, nullptr);
    }

    static void
    TearDownTestSuite()
    {
        delete catalog;
        delete db;
        catalog = nullptr;
        db = nullptr;
    }

    RelTable
    run(int q)
    {
        Executor ex(*catalog);
        return ex.run(tpchQuery(q, kSf));
    }

    static TpchDatabase *db;
    static Catalog *catalog;
};

TpchDatabase *QueriesTest::db = nullptr;
Catalog *QueriesTest::catalog = nullptr;

class AllQueriesRun : public QueriesTest,
                      public ::testing::WithParamInterface<int>
{
};

/** Every query must execute and produce a plausibly-shaped answer. */
TEST_P(AllQueriesRun, ExecutesAndProducesRows)
{
    RelTable out = run(GetParam());
    EXPECT_GT(out.numColumns(), 0);
    switch (GetParam()) {
      case 1:
        EXPECT_EQ(out.numRows(), 4); // A/F, N/F, N/O, R/F
        break;
      case 4:
        EXPECT_EQ(out.numRows(), 5); // the five priorities
        break;
      case 5:
        EXPECT_EQ(out.numRows(), 5); // the five ASIA nations
        break;
      case 6:
      case 14:
      case 17:
      case 19:
        EXPECT_EQ(out.numRows(), 1); // scalar answers
        break;
      case 12:
        EXPECT_EQ(out.numRows(), 2); // MAIL, SHIP
        break;
      default:
        EXPECT_GE(out.numRows(), 0);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(Tpch, AllQueriesRun,
                         ::testing::ValuesIn(allQueryNumbers()));

TEST_F(QueriesTest, Q1MatchesReference)
{
    RelTable out = run(1);
    // Brute-force reference.
    std::int32_t cutoff = parseDate("1998-09-02");
    struct Acc { std::int64_t qty = 0, price = 0, cnt = 0; };
    std::map<std::string, Acc> ref;
    const auto &li = *db->lineitem;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        if (li.col("l_shipdate").get(i) > cutoff)
            continue;
        std::string key(li.getString(li.col("l_returnflag"), i));
        key += "|";
        key += li.getString(li.col("l_linestatus"), i);
        Acc &a = ref[key];
        a.qty += li.col("l_quantity").get(i);
        a.price += li.col("l_extendedprice").get(i);
        a.cnt += 1;
    }
    ASSERT_EQ(out.numRows(), static_cast<std::int64_t>(ref.size()));
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::string key(out.col("l_returnflag").str(r));
        key += "|";
        key += out.col("l_linestatus").str(r);
        ASSERT_TRUE(ref.count(key)) << key;
        EXPECT_EQ(out.col("sum_qty").get(r), ref[key].qty);
        EXPECT_EQ(out.col("sum_base_price").get(r), ref[key].price);
        EXPECT_EQ(out.col("count_order").get(r), ref[key].cnt);
        EXPECT_EQ(out.col("avg_qty").get(r), ref[key].qty / ref[key].cnt);
    }
}

TEST_F(QueriesTest, Q6MatchesReference)
{
    RelTable out = run(6);
    std::int64_t want = 0;
    const auto &li = *db->lineitem;
    std::int32_t lo = parseDate("1994-01-01"), hi = parseDate("1995-01-01");
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        std::int64_t sd = li.col("l_shipdate").get(i);
        std::int64_t disc = li.col("l_discount").get(i);
        if (sd >= lo && sd < hi && disc >= 5 && disc <= 7
                && li.col("l_quantity").get(i) < 24 * kDecimalScale) {
            want += decimalMul(li.col("l_extendedprice").get(i), disc);
        }
    }
    ASSERT_EQ(out.numRows(), 1);
    EXPECT_GT(want, 0);
    EXPECT_EQ(out.col("revenue").get(0), want);
}

TEST_F(QueriesTest, Q3TopOrdersMatchReference)
{
    RelTable out = run(3);
    ASSERT_LE(out.numRows(), 10);
    // Reference: revenue per qualifying order.
    std::int32_t date = parseDate("1995-03-15");
    const auto &cust = *db->customer;
    const auto &ord = *db->orders;
    const auto &li = *db->lineitem;
    std::vector<bool> building(cust.numRows());
    for (std::int64_t i = 0; i < cust.numRows(); ++i) {
        building[i] =
            cust.getString(cust.col("c_mktsegment"), i) == "BUILDING";
    }
    std::map<std::int64_t, std::int64_t> rev;
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        if (li.col("l_shipdate").get(i) <= date)
            continue;
        std::int64_t o = li.col("l_orderkey").get(i);
        if (ord.col("o_orderdate").get(o - 1) >= date)
            continue;
        if (!building[ord.col("o_custkey").get(o - 1) - 1])
            continue;
        rev[o] += decimalMul(li.col("l_extendedprice").get(i),
                             100 - li.col("l_discount").get(i));
    }
    std::int64_t best = 0;
    for (const auto &[o, v] : rev)
        best = std::max(best, v);
    ASSERT_GT(out.numRows(), 0);
    EXPECT_EQ(out.col("revenue").get(0), best);
}

TEST_F(QueriesTest, Q14PromoShareIsAPercentage)
{
    RelTable out = run(14);
    ASSERT_EQ(out.numRows(), 1);
    std::int64_t share = out.col("promo_revenue").get(0);
    EXPECT_GT(share, 0);
    EXPECT_LT(share, makeDecimal(100));
    // PROMO is 1 of 6 type prefixes; share should be near 16.7%.
    EXPECT_GT(share, makeDecimal(5));
    EXPECT_LT(share, makeDecimal(35));
}

TEST_F(QueriesTest, Q13IncludesCustomersWithNoOrders)
{
    RelTable out = run(13);
    // Some customers have no orders at SF 0.01 (1500 customers,
    // 15000 orders over random custkeys -> a few gaps are expected);
    // the c_count = 0 bucket must be present.
    bool has_zero = false;
    std::int64_t total = 0;
    for (std::int64_t i = 0; i < out.numRows(); ++i) {
        total += out.col("custdist").get(i);
        if (out.col("c_count").get(i) == 0)
            has_zero = true;
    }
    EXPECT_EQ(total, db->customer->numRows());
    EXPECT_TRUE(has_zero);
}

TEST_F(QueriesTest, Q15AgreesWithQ15Reference)
{
    RelTable out = run(15);
    ASSERT_GE(out.numRows(), 1);
    // All returned suppliers share the maximum revenue.
    std::int64_t maxrev = out.col("total_revenue").get(0);
    for (std::int64_t i = 1; i < out.numRows(); ++i)
        EXPECT_EQ(out.col("total_revenue").get(i), maxrev);

    std::map<std::int64_t, std::int64_t> rev;
    const auto &li = *db->lineitem;
    std::int32_t lo = parseDate("1996-01-01"), hi = parseDate("1996-04-01");
    for (std::int64_t i = 0; i < li.numRows(); ++i) {
        std::int64_t sd = li.col("l_shipdate").get(i);
        if (sd >= lo && sd < hi) {
            rev[li.col("l_suppkey").get(i)] +=
                decimalMul(li.col("l_extendedprice").get(i),
                           100 - li.col("l_discount").get(i));
        }
    }
    std::int64_t want = 0;
    for (const auto &[s, v] : rev)
        want = std::max(want, v);
    EXPECT_EQ(maxrev, want);
}

TEST_F(QueriesTest, Q21OnlySaudiSuppliers)
{
    RelTable out = run(21);
    const auto &sup = *db->supplier;
    std::int64_t saudi = -1;
    const auto &nn = *db->nation;
    for (std::int64_t i = 0; i < nn.numRows(); ++i)
        if (nn.getString(nn.col("n_name"), i) == "SAUDI ARABIA")
            saudi = nn.col("n_nationkey").get(i);
    ASSERT_GE(saudi, 0);
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        auto name = out.col("s_name").str(r);
        bool found = false;
        for (std::int64_t i = 0; i < sup.numRows(); ++i) {
            if (sup.getString(sup.col("s_name"), i) == name) {
                EXPECT_EQ(sup.col("s_nationkey").get(i), saudi);
                found = true;
            }
        }
        EXPECT_TRUE(found);
    }
}

TEST_F(QueriesTest, Q22OnlyEligibleCountryCodes)
{
    RelTable out = run(22);
    std::vector<std::int64_t> codes = {13, 31, 23, 29, 30, 18, 17};
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::int64_t c = out.col("cntrycode").get(r);
        EXPECT_TRUE(std::find(codes.begin(), codes.end(), c)
                    != codes.end());
        EXPECT_GT(out.col("numcust").get(r), 0);
    }
}

TEST_F(QueriesTest, Q18OrdersReallyExceedThreshold)
{
    RelTable out = run(18);
    // Recompute sum(l_quantity) for each reported order.
    const auto &li = *db->lineitem;
    std::map<std::int64_t, std::int64_t> qty;
    for (std::int64_t i = 0; i < li.numRows(); ++i)
        qty[li.col("l_orderkey").get(i)] += li.col("l_quantity").get(i);
    for (std::int64_t r = 0; r < out.numRows(); ++r) {
        std::int64_t o = out.col("o_orderkey").get(r);
        EXPECT_GT(qty[o], 300 * kDecimalScale);
        EXPECT_EQ(out.col("sum_quantity").get(r), qty[o]);
    }
}

} // namespace
} // namespace aquoman::tpch
