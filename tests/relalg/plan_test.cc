/** @file Unit tests for plan construction and printing. */

#include <gtest/gtest.h>

#include "relalg/plan.hh"

namespace aquoman {
namespace {

TEST(PlanTest, BuildersWireChildren)
{
    auto p = orderBy(
        groupBy(join(JoinType::LeftAnti,
                     filter(scan("a", "x"), gt(col("v"), lit(1))),
                     scan("b"), {"k"}, {"k2"},
                     ne(col("u"), col("w"))),
                {"g"}, {{"n", AggKind::Count, nullptr}}),
        {{"n", true}}, 7);
    ASSERT_EQ(p->kind, PlanKind::OrderBy);
    EXPECT_EQ(p->limit, 7);
    const Plan &gb = *p->children[0];
    ASSERT_EQ(gb.kind, PlanKind::GroupBy);
    const Plan &j = *gb.children[0];
    ASSERT_EQ(j.kind, PlanKind::Join);
    EXPECT_EQ(j.joinType, JoinType::LeftAnti);
    EXPECT_TRUE(j.residual != nullptr);
    EXPECT_EQ(j.children[0]->kind, PlanKind::Filter);
    EXPECT_EQ(j.children[0]->children[0]->scanAlias, "x");
}

TEST(PlanTest, PrinterShowsEveryOperator)
{
    auto p = orderBy(
        groupBy(
            project(filter(scan("t"),
                           andE(like(col("s"), "x%"),
                                inList(col("k"), {1, 2}))),
                    {{"v", caseWhen({gt(col("a"), lit(0)),
                                     litDec("1.50")},
                                    litDate("1995-06-17"))}}),
            {"g"},
            {{"m", AggKind::Max, col("v")},
             {"c", AggKind::CountDistinct, col("k")}}),
        {{"m", false}});
    std::string s = planToString(p);
    for (const char *token :
         {"order-by", "group-by", "max(", "count_distinct(", "project",
          "filter", "scan t", "like 'x%'", "in (1, 2)", "case(...)"}) {
        EXPECT_NE(s.find(token), std::string::npos) << token << "\n"
                                                    << s;
    }
}

TEST(PlanTest, QueryPrinterListsStages)
{
    Query q{"demo",
            {{"s1", scan("t")},
             {"out", filter(scanStage("s1"), gt(col("x"), lit(0)))}}};
    std::string s = queryToString(q);
    EXPECT_NE(s.find("query demo"), std::string::npos);
    EXPECT_NE(s.find("stage s1"), std::string::npos);
    EXPECT_NE(s.find("scan stage:s1"), std::string::npos);
}

TEST(PlanTest, ExprPrinterFormatsTypedLiterals)
{
    auto p = filter(scan("t"),
                    andE(le(col("d"), litDate("1998-09-02")),
                         lt(col("m"), litDec("0.07"))));
    std::string s = planToString(p);
    EXPECT_NE(s.find("date'1998-09-02'"), std::string::npos);
    EXPECT_NE(s.find("0.07"), std::string::npos);
}

} // namespace
} // namespace aquoman
