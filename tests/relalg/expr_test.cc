/** @file Unit tests for expression evaluation semantics. */

#include <gtest/gtest.h>

#include "relalg/eval.hh"
#include "relalg/plan.hh"

namespace aquoman {
namespace {

RelTable
fixture()
{
    RelTable t;
    RelColumn qty("qty", ColumnType::Int64);
    RelColumn price("price", ColumnType::Decimal);
    RelColumn disc("disc", ColumnType::Decimal);
    RelColumn day("day", ColumnType::Date);
    RelColumn name("name", ColumnType::Varchar);
    auto heap = std::make_shared<StringHeap>();
    struct Row { std::int64_t q, p, d; const char *iso; const char *n; };
    const Row rows[] = {
        {10, 10000, 5, "1994-03-01", "forest green"},
        {24, 20000, 0, "1995-07-15", "navy blue"},
        {3, 5000, 10, "1993-01-01", "forest floor"},
        {50, 99999, 7, "1998-11-30", "green tea"},
    };
    for (const auto &r : rows) {
        qty.push(r.q);
        price.push(r.p);
        disc.push(r.d);
        day.push(parseDate(r.iso));
        name.push(heap->intern(r.n));
    }
    name.heap = heap;
    t.addColumn(qty);
    t.addColumn(price);
    t.addColumn(disc);
    t.addColumn(day);
    t.addColumn(name);
    return t;
}

TEST(ExprTest, DecimalRevenueFormula)
{
    RelTable t = fixture();
    auto e = mul(col("price"), sub(litDec("1.00"), col("disc")));
    RelColumn r = evalExpr(e, t);
    EXPECT_EQ(r.type, ColumnType::Decimal);
    EXPECT_EQ(r.get(0), decimalMul(10000, 95));
    EXPECT_EQ(r.get(1), 20000);
    EXPECT_EQ(r.get(2), decimalMul(5000, 90));
}

TEST(ExprTest, IntDecimalPromotionInComparison)
{
    RelTable t = fixture();
    // qty is Int64; price < 150 (int literal) must mean 150.00.
    BitVector bv = evalPredicate(lt(col("price"), lit(150)), t);
    EXPECT_TRUE(bv.get(0));   // 100.00 < 150
    EXPECT_FALSE(bv.get(1));  // 200.00
    EXPECT_TRUE(bv.get(2));   // 50.00
    EXPECT_FALSE(bv.get(3));  // 999.99
}

TEST(ExprTest, IntDecimalPromotionInArith)
{
    RelTable t = fixture();
    // 1 - disc where disc is decimal: integer 1 becomes 1.00.
    RelColumn r = evalExpr(sub(lit(1), col("disc")), t);
    EXPECT_EQ(r.type, ColumnType::Decimal);
    EXPECT_EQ(r.get(0), 95);
    EXPECT_EQ(r.get(1), 100);
}

TEST(ExprTest, DateComparison)
{
    RelTable t = fixture();
    BitVector bv = evalPredicate(
        andE(ge(col("day"), litDate("1994-01-01")),
             lt(col("day"), litDate("1996-01-01"))), t);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(1));
    EXPECT_FALSE(bv.get(2));
    EXPECT_FALSE(bv.get(3));
}

TEST(ExprTest, YearExtraction)
{
    RelTable t = fixture();
    RelColumn r = evalExpr(year(col("day")), t);
    EXPECT_EQ(r.get(0), 1994);
    EXPECT_EQ(r.get(1), 1995);
    EXPECT_EQ(r.get(2), 1993);
    EXPECT_EQ(r.get(3), 1998);
}

TEST(ExprTest, StringEqualityAndLike)
{
    RelTable t = fixture();
    BitVector eq_bv = evalPredicate(eq(col("name"),
                                       litStr("navy blue")), t);
    EXPECT_EQ(eq_bv.popcount(), 1);
    EXPECT_TRUE(eq_bv.get(1));

    BitVector like_bv = evalPredicate(like(col("name"), "forest%"), t);
    EXPECT_TRUE(like_bv.get(0));
    EXPECT_FALSE(like_bv.get(1));
    EXPECT_TRUE(like_bv.get(2));
    EXPECT_FALSE(like_bv.get(3));

    BitVector mid = evalPredicate(like(col("name"), "%green%"), t);
    EXPECT_TRUE(mid.get(0));
    EXPECT_TRUE(mid.get(3));
    EXPECT_EQ(mid.popcount(), 2);
}

TEST(ExprTest, InListIntAndString)
{
    RelTable t = fixture();
    BitVector iv = evalPredicate(inList(col("qty"), {3, 50}), t);
    EXPECT_TRUE(iv.get(2));
    EXPECT_TRUE(iv.get(3));
    EXPECT_EQ(iv.popcount(), 2);
    BitVector sv = evalPredicate(
        inStrList(col("name"), {"green tea", "navy blue"}), t);
    EXPECT_EQ(sv.popcount(), 2);
}

TEST(ExprTest, CaseWhen)
{
    RelTable t = fixture();
    auto e = caseWhen({gt(col("qty"), lit(20)), lit(1)}, lit(0));
    RelColumn r = evalExpr(e, t);
    EXPECT_EQ(r.get(0), 0);
    EXPECT_EQ(r.get(1), 1);
    EXPECT_EQ(r.get(2), 0);
    EXPECT_EQ(r.get(3), 1);
}

TEST(ExprTest, NotAndLogic)
{
    RelTable t = fixture();
    BitVector bv = evalPredicate(
        notE(orE(eq(col("qty"), lit(10)), eq(col("qty"), lit(3)))), t);
    EXPECT_FALSE(bv.get(0));
    EXPECT_TRUE(bv.get(1));
    EXPECT_FALSE(bv.get(2));
    EXPECT_TRUE(bv.get(3));
}

TEST(ExprTest, NullPropagation)
{
    RelTable t;
    RelColumn a("a", ColumnType::Int64);
    a.push(5);
    a.push(kNullValue);
    t.addColumn(a);
    RelColumn r = evalExpr(add(col("a"), lit(1)), t);
    EXPECT_EQ(r.get(0), 6);
    EXPECT_EQ(r.get(1), kNullValue);
    BitVector bv = evalPredicate(gt(col("a"), lit(0)), t);
    EXPECT_TRUE(bv.get(0));
    EXPECT_FALSE(bv.get(1)); // NULL comparisons are false
}

TEST(LikeMatchTest, Wildcards)
{
    EXPECT_TRUE(likeMatch("hello", "hello"));
    EXPECT_TRUE(likeMatch("hello", "h%"));
    EXPECT_TRUE(likeMatch("hello", "%o"));
    EXPECT_TRUE(likeMatch("hello", "%ell%"));
    EXPECT_TRUE(likeMatch("hello", "h_llo"));
    EXPECT_FALSE(likeMatch("hello", "h_lo"));
    EXPECT_TRUE(likeMatch("", "%"));
    EXPECT_FALSE(likeMatch("", "_"));
    EXPECT_TRUE(likeMatch("special monthly requests",
                          "%special%requests%"));
    EXPECT_FALSE(likeMatch("specialrequest", "%special%requests%"));
    EXPECT_TRUE(likeMatch("abcabc", "%abc"));
    EXPECT_TRUE(likeMatch("aXbXc", "a%b%c"));
    EXPECT_FALSE(likeMatch("ab", "a%b%c"));
}

TEST(ExprTest, CollectColumnsDeduplicates)
{
    auto e = andE(gt(col("a"), col("b")), lt(col("a"), lit(10)));
    std::vector<std::string> cols;
    collectColumns(e, cols);
    ASSERT_EQ(cols.size(), 2u);
    EXPECT_EQ(cols[0], "a");
    EXPECT_EQ(cols[1], "b");
}

} // namespace
} // namespace aquoman
