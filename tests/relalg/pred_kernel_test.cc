/**
 * @file
 * Differential tests for ConjunctKernel: every compiled mask must be
 * bit-identical to the evalPredicate oracle over the same rows, across
 * the (compare op × operand shape × type promotion) matrix, with
 * NULL-heavy data and dense, sub-range and sparse selections.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/simd.hh"
#include "relalg/eval.hh"
#include "relalg/plan.hh"
#include "relalg/pred_kernel.hh"

namespace aquoman {
namespace {

/** Random typed table: ~30% NULLs, values bounded away from overflow. */
RelTable
makeTable(std::int64_t rows, unsigned seed)
{
    std::mt19937_64 rng(seed);
    auto fill = [&](RelColumn &c, std::int64_t lo, std::int64_t hi) {
        std::uniform_int_distribution<std::int64_t> val(lo, hi);
        std::uniform_int_distribution<int> pct(0, 99);
        for (std::int64_t i = 0; i < rows; ++i)
            c.push(pct(rng) < 30 ? kNullValue : val(rng));
    };
    RelTable t;
    RelColumn a("a", ColumnType::Int64);
    fill(a, -1000, 1000);
    t.addColumn(std::move(a));
    RelColumn b("b", ColumnType::Int64);
    fill(b, -50, 50);
    t.addColumn(std::move(b));
    RelColumn d("d", ColumnType::Decimal);
    fill(d, -100000, 100000);
    t.addColumn(std::move(d));
    RelColumn e("e", ColumnType::Decimal);
    fill(e, -500, 500);
    t.addColumn(std::move(e));
    RelColumn dt("dt", ColumnType::Date);
    fill(dt, 7000, 12000);
    t.addColumn(std::move(dt));
    RelColumn i32("i32", ColumnType::Int32);
    fill(i32, -100, 100);
    t.addColumn(std::move(i32));
    RelColumn s("s", ColumnType::Varchar);
    auto heap = std::make_shared<StringHeap>();
    for (std::int64_t i = 0; i < rows; ++i)
        s.push(heap->intern(i % 2 == 0 ? "even" : "odd"));
    s.heap = heap;
    t.addColumn(std::move(s));
    return t;
}

/** The predicate matrix the kernel must reproduce bit-for-bit. */
std::vector<ExprPtr>
predicateMatrix()
{
    std::vector<ExprPtr> out;
    // Every compare op, col vs const and const vs col.
    for (CmpOp op : {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le,
                     CmpOp::Gt, CmpOp::Ge}) {
        out.push_back(cmp(op, col("a"), lit(17)));
        out.push_back(cmp(op, lit(17), col("a")));
        out.push_back(cmp(op, col("a"), col("b")));
    }
    // Decimal promotion: integer side scaled on compare and in arith.
    out.push_back(lt(col("d"), lit(120)));
    out.push_back(ge(lit(-3), col("e")));
    out.push_back(gt(col("d"), col("a")));
    out.push_back(le(col("d"), litDec("55.25")));
    // Arithmetic subtrees, including decimal mul/div semantics.
    out.push_back(gt(add(col("a"), col("b")), lit(10)));
    out.push_back(lt(sub(col("a"), lit(3)), col("b")));
    out.push_back(ge(mul(col("e"), litDec("0.05")), litDec("1.00")));
    out.push_back(le(div(col("d"), col("e")), litDec("2.50")));
    out.push_back(ne(div(col("a"), col("b")), lit(0))); // int div, /0 -> 0
    out.push_back(eq(mul(col("b"), lit(2)), col("a")));
    // Date arithmetic: shift stays a Date, difference is an Int64.
    out.push_back(lt(add(col("dt"), lit(30)), litDate("2001-01-01")));
    out.push_back(gt(sub(col("dt"), litDate("1995-01-01")), lit(365)));
    // Mixed promotion inside a deeper tree, with a constant subtree
    // that must fold to the same value the oracle computes.
    out.push_back(gt(mul(add(col("e"), litDec("0.10")), lit(3)),
                     add(litDec("1.00"), litDec("0.50"))));
    out.push_back(lt(col("i32"), lit(0)));
    // NULL literal on one side: every row must fail.
    out.push_back(eq(col("a"), lit(kNullValue)));
    return out;
}

void
expectMaskMatches(const ExprPtr &pred, const RelTable &t,
                  const std::int64_t *rows, std::int64_t first,
                  std::int64_t n, const BitVector &oracle_full)
{
    auto k = ConjunctKernel::tryCompile(pred, t);
    ASSERT_NE(k, nullptr);
    ConjunctKernel::Scratch scratch;
    BitVector got;
    k->evalMask(t, rows, first, n, got, scratch);
    ASSERT_EQ(got.size(), n);
    for (std::int64_t i = 0; i < n; ++i) {
        std::int64_t row = rows != nullptr ? rows[i] : first + i;
        ASSERT_EQ(got.get(i), oracle_full.get(row))
            << "selection position " << i << " (row " << row << ")";
    }
}

TEST(PredKernelTest, DenseMaskMatchesOracleAcrossMatrix)
{
    RelTable t = makeTable(4097, 42);
    for (const ExprPtr &p : predicateMatrix()) {
        SCOPED_TRACE(testing::Message() << "predicate #"
                     << (&p - predicateMatrix().data()));
        BitVector oracle = evalPredicate(p, t);
        expectMaskMatches(p, t, nullptr, 0, t.numRows(), oracle);
    }
}

TEST(PredKernelTest, DenseSubrangeMatchesOracle)
{
    RelTable t = makeTable(2000, 7);
    for (const ExprPtr &p : predicateMatrix()) {
        BitVector oracle = evalPredicate(p, t);
        expectMaskMatches(p, t, nullptr, 123, 777, oracle);
        expectMaskMatches(p, t, nullptr, 1990, 10, oracle); // tail < word
    }
}

TEST(PredKernelTest, SparseRowsMatchOracle)
{
    RelTable t = makeTable(3000, 99);
    std::mt19937_64 rng(5);
    std::vector<std::int64_t> rows;
    for (std::int64_t r = 0; r < t.numRows(); ++r)
        if (rng() % 3 == 0)
            rows.push_back(r);
    for (const ExprPtr &p : predicateMatrix()) {
        BitVector oracle = evalPredicate(p, t);
        expectMaskMatches(p, t, rows.data(), 0,
                          static_cast<std::int64_t>(rows.size()), oracle);
    }
}

TEST(PredKernelTest, AllPassAndNonePassEdges)
{
    RelTable t = makeTable(130, 3);
    // a in [-1000, 1000] or NULL: no row passes < -5000, and every
    // non-NULL row passes > -5000.
    ExprPtr none = lt(col("a"), lit(-5000));
    ExprPtr all_non_null = gt(col("a"), lit(-5000));
    for (const ExprPtr &p : {none, all_non_null}) {
        BitVector oracle = evalPredicate(p, t);
        expectMaskMatches(p, t, nullptr, 0, t.numRows(), oracle);
    }
    ConjunctKernel::Scratch s;
    BitVector got;
    auto k = ConjunctKernel::tryCompile(none, t);
    ASSERT_NE(k, nullptr);
    k->evalMask(t, nullptr, 0, t.numRows(), got, s);
    EXPECT_TRUE(got.allZero());
}

TEST(PredKernelTest, CheapOnlyForBareCompares)
{
    RelTable t = makeTable(16, 1);
    auto bare = ConjunctKernel::tryCompile(lt(col("a"), lit(3)), t);
    ASSERT_NE(bare, nullptr);
    EXPECT_TRUE(bare->cheap());
    // Decimal-vs-int col compare needs no temporaries either (compare
    // scaling handles promotion), so it stays cheap.
    auto promoted = ConjunctKernel::tryCompile(gt(col("d"), col("a")), t);
    ASSERT_NE(promoted, nullptr);
    EXPECT_TRUE(promoted->cheap());
    auto arith_k =
        ConjunctKernel::tryCompile(gt(add(col("a"), col("b")), lit(0)), t);
    ASSERT_NE(arith_k, nullptr);
    EXPECT_FALSE(arith_k->cheap());
}

TEST(PredKernelTest, RejectsIneligibleConjuncts)
{
    RelTable t = makeTable(16, 2);
    EXPECT_EQ(ConjunctKernel::tryCompile(like(col("s"), "%ev%"), t),
              nullptr);
    EXPECT_EQ(ConjunctKernel::tryCompile(inList(col("a"), {1, 2}), t),
              nullptr);
    EXPECT_EQ(ConjunctKernel::tryCompile(
                  andE(lt(col("a"), lit(0)), gt(col("b"), lit(0))), t),
              nullptr);
    EXPECT_EQ(ConjunctKernel::tryCompile(notE(lt(col("a"), lit(0))), t),
              nullptr);
    EXPECT_EQ(ConjunctKernel::tryCompile(eq(col("s"), litStr("even")), t),
              nullptr);
    EXPECT_EQ(ConjunctKernel::tryCompile(eq(year(col("dt")), lit(1997)), t),
              nullptr);
}

TEST(PredKernelTest, KernelIsReusableAcrossSameSchemaTables)
{
    RelTable t1 = makeTable(500, 11);
    RelTable t2 = makeTable(700, 12);
    ExprPtr p = gt(add(col("a"), col("b")), lit(5));
    auto k = ConjunctKernel::tryCompile(p, t1);
    ASSERT_NE(k, nullptr);
    ConjunctKernel::Scratch s;
    BitVector got;
    k->evalMask(t2, nullptr, 0, t2.numRows(), got, s);
    BitVector oracle = evalPredicate(p, t2);
    for (std::int64_t i = 0; i < t2.numRows(); ++i)
        ASSERT_EQ(got.get(i), oracle.get(i)) << "row " << i;
}

TEST(PredKernelTest, Avx2AndScalarPathsAreBitIdentical)
{
    RelTable t = makeTable(1025, 21);
    const bool host_avx2 = avx2Available(); // never force beyond this
    for (const ExprPtr &p : predicateMatrix()) {
        auto k = ConjunctKernel::tryCompile(p, t);
        ASSERT_NE(k, nullptr);
        ConjunctKernel::Scratch s;
        BitVector with_avx2, without;
        setAvx2Enabled(host_avx2);
        k->evalMask(t, nullptr, 0, t.numRows(), with_avx2, s);
        setAvx2Enabled(false);
        k->evalMask(t, nullptr, 0, t.numRows(), without, s);
        setAvx2Enabled(host_avx2);
        ASSERT_EQ(with_avx2.size(), without.size());
        for (std::int64_t w = 0; w < with_avx2.numWords(); ++w)
            ASSERT_EQ(with_avx2.word(w), without.word(w)) << "word " << w;
    }
}

} // namespace
} // namespace aquoman
