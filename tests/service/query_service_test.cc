/** @file
 * Service-layer contract tests: K concurrent queries interleaved over
 * an M-device array produce bit-identical answers and exactly-equal
 * work metrics to the same queries run one-at-a-time on a fresh
 * service (and to the baseline engine), for every AQUOMAN_THREADS
 * value; forced suspensions complete correctly through the host path;
 * admission control produces queue wait; and modelled throughput
 * scales monotonically with the device count.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "engine/executor.hh"
#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::service {
namespace {

using tpch::TpchConfig;
using tpch::TpchDatabase;
using tpch::tpchQuery;

constexpr double kSf = 0.01;
const std::vector<int> kQueries{1, 3, 6, 12, 13, 14, 19, 4};

const TpchDatabase &
database()
{
    static TpchDatabase db = [] {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        return TpchDatabase::generate(cfg);
    }();
    return db;
}

void
installTables(QueryService &svc)
{
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
}

std::unique_ptr<QueryService>
makeService(int num_devices, int admission_limit,
            std::int64_t query_dram_bytes = 0)
{
    ServiceConfig cfg;
    cfg.numDevices = num_devices;
    cfg.admissionLimit = admission_limit;
    cfg.queryDramBytes = query_dram_bytes;
    auto svc = std::make_unique<QueryService>(cfg);
    installTables(*svc);
    return svc;
}

/** Baseline answers from the plain engine (no service, no devices). */
const RelTable &
baselineAnswer(int q)
{
    static std::map<int, RelTable> answers = [] {
        const TpchDatabase &db = database();
        Catalog catalog;
        for (const auto &t : {db.region, db.nation, db.supplier,
                              db.customer, db.part, db.partsupp,
                              db.orders, db.lineitem})
            catalog.put(t, nullptr);
        db.registerMetadata(catalog);
        std::map<int, RelTable> out;
        for (int q : kQueries) {
            Executor ex(catalog);
            out[q] = ex.run(tpchQuery(q, kSf));
        }
        return out;
    }();
    return answers.at(q);
}

void
expectRelTablesIdentical(const RelTable &a, const RelTable &b,
                         const std::string &what)
{
    ASSERT_EQ(a.numColumns(), b.numColumns()) << what;
    ASSERT_EQ(a.numRows(), b.numRows()) << what;
    for (int c = 0; c < a.numColumns(); ++c) {
        const RelColumn &ca = a.col(c);
        const RelColumn &cb = b.col(c);
        ASSERT_EQ(ca.name, cb.name) << what;
        ASSERT_EQ(ca.type, cb.type) << what << " " << ca.name;
        if (ca.type == ColumnType::Varchar) {
            for (std::int64_t i = 0; i < ca.size(); ++i) {
                ASSERT_EQ(ca.str(i), cb.str(i))
                    << what << " " << ca.name << " row " << i;
            }
        } else {
            ASSERT_EQ(*ca.vals, *cb.vals) << what << " " << ca.name;
        }
    }
}

/** Exact equality: identical work happened, in the same FP order. */
void
expectSameWork(const QueryRecord &a, const QueryRecord &b,
               const std::string &what)
{
    EXPECT_EQ(a.stats.deviceSeconds, b.stats.deviceSeconds) << what;
    EXPECT_EQ(a.stats.deviceFlashBytes, b.stats.deviceFlashBytes) << what;
    EXPECT_EQ(a.stats.tasksExecuted, b.stats.tasksExecuted) << what;
    EXPECT_EQ(a.stats.dmaBytes, b.stats.dmaBytes) << what;
    EXPECT_EQ(a.suspendCount, b.suspendCount) << what;
    EXPECT_EQ(a.hostFinishBytes, b.hostFinishBytes) << what;
    EXPECT_EQ(a.metrics.rowOps, b.metrics.rowOps) << what;
    EXPECT_EQ(a.metrics.flashBytesRead, b.metrics.flashBytesRead) << what;
    EXPECT_EQ(a.deviceBusySec, b.deviceBusySec) << what;
}

struct ConcurrentRun
{
    std::vector<QueryId> ids;
    std::vector<double> doneSec;
    double makespan = 0.0;
    std::unique_ptr<QueryService> svc;
};

/** Submit all probe queries at t=0 and drain (K-way concurrency). */
ConcurrentRun
runConcurrent(int num_devices, int admission_limit)
{
    ConcurrentRun run;
    run.svc = makeService(num_devices, admission_limit);
    for (int q : kQueries)
        run.ids.push_back(run.svc->submit(tpchQuery(q, kSf)));
    run.svc->drain();
    for (QueryId id : run.ids)
        run.doneSec.push_back(run.svc->record(id).doneSec);
    run.makespan = run.svc->aggregate().makespanSec;
    return run;
}

class QueryServiceTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        ThreadPool::setGlobalParallelism(
            ThreadPool::configuredParallelism());
    }
};

TEST_F(QueryServiceTest, ConcurrentMatchesSerialForEveryThreadCount)
{
    // Reference: same queries, same service shape, one at a time.
    ThreadPool::setGlobalParallelism(1);
    auto serial = makeService(4, 8);
    std::vector<QueryId> serial_ids;
    for (int q : kQueries) {
        QueryId id = serial->submit(tpchQuery(q, kSf));
        serial->drain();
        serial_ids.push_back(id);
    }

    std::vector<ConcurrentRun> runs;
    for (int threads : {1, 4}) {
        ThreadPool::setGlobalParallelism(threads);
        runs.push_back(runConcurrent(4, 8));
        const ConcurrentRun &run = runs.back();
        for (std::size_t i = 0; i < kQueries.size(); ++i) {
            std::string what = "q" + std::to_string(kQueries[i])
                + " threads=" + std::to_string(threads);
            const QueryRecord &rec = run.svc->record(run.ids[i]);
            EXPECT_EQ(rec.state, QueryState::Done) << what;
            // Bit-identical to the plain engine...
            expectRelTablesIdentical(rec.result,
                                     baselineAnswer(kQueries[i]), what);
            // ...and exactly the same work as the serial service run.
            const QueryRecord &ser = serial->record(serial_ids[i]);
            expectRelTablesIdentical(rec.result, ser.result, what);
            expectSameWork(rec, ser, what);
        }
    }

    // Modelled times are bit-identical across thread counts.
    ASSERT_EQ(runs.size(), 2u);
    EXPECT_EQ(runs[0].makespan, runs[1].makespan);
    for (std::size_t i = 0; i < kQueries.size(); ++i) {
        EXPECT_EQ(runs[0].doneSec[i], runs[1].doneSec[i])
            << "q" << kQueries[i];
    }
}

TEST_F(QueryServiceTest, RuntimeSuspensionCompletesViaHost)
{
    // A 4KB intermediate budget forces Sec. VI-E suspensions in any
    // query whose joins or sorts need device DRAM (q3 does).
    auto svc = makeService(4, 8, /*query_dram_bytes=*/4096);
    QueryId id = svc->submit(tpchQuery(3, kSf));
    svc->drain();

    const QueryRecord &rec = svc->record(id);
    EXPECT_EQ(rec.state, QueryState::Done);
    expectRelTablesIdentical(rec.result, baselineAnswer(3), "q3");
    EXPECT_GE(rec.suspendCount, 1);
    EXPECT_GT(rec.hostFinishBytes, 0);
    EXPECT_GT(rec.hostFinishSec, 0.0);
    bool saw_suspended = false, saw_host_finish = false;
    for (const LifecycleEvent &ev : rec.lifecycle) {
        saw_suspended |= ev.state == QueryState::Suspended;
        saw_host_finish |= ev.state == QueryState::HostFinish;
    }
    EXPECT_TRUE(saw_suspended);
    EXPECT_TRUE(saw_host_finish);

    // Structured lifecycle: starts Queued at submit, ends Done at
    // doneSec, timestamps never go backwards, and the legacy text
    // rendering still mentions every transition.
    ASSERT_GE(rec.lifecycle.size(), 2u);
    EXPECT_EQ(rec.lifecycle.front().state, QueryState::Queued);
    EXPECT_EQ(rec.lifecycle.front().atSec, rec.submitSec);
    EXPECT_EQ(rec.lifecycle.back().state, QueryState::Done);
    EXPECT_EQ(rec.lifecycle.back().atSec, rec.doneSec);
    for (std::size_t i = 1; i < rec.lifecycle.size(); ++i)
        EXPECT_GE(rec.lifecycle[i].atSec, rec.lifecycle[i - 1].atSec);
    std::vector<std::string> text = rec.formatLifecycle();
    ASSERT_EQ(text.size(), rec.lifecycle.size());
    EXPECT_NE(text.front().find("submitted -> Queued"),
              std::string::npos);
    EXPECT_NE(text.back().find("-> Done"), std::string::npos);
}

TEST_F(QueryServiceTest, AdmissionReservationFailureRunsOnHost)
{
    // A reservation larger than device DRAM can never be granted: the
    // query suspends at admission and the host runs it whole.
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.queryDramBytes = cfg.device.dramBytes + 1;
    QueryService svc(cfg);
    installTables(svc);

    QueryId id = svc.submit(tpchQuery(6, kSf));
    svc.drain();

    const QueryRecord &rec = svc.record(id);
    EXPECT_EQ(rec.state, QueryState::Done);
    expectRelTablesIdentical(rec.result, baselineAnswer(6), "q6");
    EXPECT_EQ(rec.suspendCount, 1);
    EXPECT_EQ(rec.stats.tasksExecuted, 0); // no device work at all
    EXPECT_GT(rec.hostFinishBytes, 0);
    // The host's base-table reads went over the anchor's host port.
    EXPECT_GT(svc.deviceSwitch(rec.anchorDevice)
                  .bytesRead(FlashPort::Host), 0);
}

TEST_F(QueryServiceTest, TightAdmissionProducesQueueWait)
{
    auto svc = makeService(2, /*admission_limit=*/1);
    std::vector<QueryId> ids;
    for (int q : {6, 6, 6})
        ids.push_back(svc->submit(tpchQuery(q, kSf)));
    svc->drain();

    EXPECT_EQ(svc->record(ids[0]).queueWaitSec, 0.0);
    double prev = 0.0;
    for (std::size_t i = 1; i < ids.size(); ++i) {
        const QueryRecord &rec = svc->record(ids[i]);
        EXPECT_GT(rec.queueWaitSec, prev) << "query " << i;
        EXPECT_EQ(rec.metrics.queueWaitSec, rec.queueWaitSec);
        prev = rec.queueWaitSec;
    }
}

TEST_F(QueryServiceTest, ThroughputScalesWithDeviceCount)
{
    double prev_makespan = 0.0;
    double prev_throughput = 0.0;
    for (int m : {1, 2, 4}) {
        ConcurrentRun run = runConcurrent(m, 8);
        ServiceStats agg = run.svc->aggregate();
        EXPECT_EQ(agg.completed,
                  static_cast<std::int64_t>(kQueries.size()));
        if (prev_makespan > 0.0) {
            EXPECT_LT(run.makespan, prev_makespan) << m << " devices";
            EXPECT_GT(agg.throughputQps, prev_throughput)
                << m << " devices";
        }
        prev_makespan = run.makespan;
        prev_throughput = agg.throughputQps;
    }
}

TEST_F(QueryServiceTest, TableTasksSpreadAcrossTheArray)
{
    ConcurrentRun run = runConcurrent(4, 8);
    ServiceStats agg = run.svc->aggregate();
    ASSERT_EQ(agg.deviceTasksRun.size(), 4u);
    for (int d = 0; d < 4; ++d) {
        EXPECT_GT(agg.deviceTasksRun[d], 0) << "device " << d;
        EXPECT_GT(agg.deviceBusySec[d], 0.0) << "device " << d;
        // Every device served AQUOMAN traffic for its stripes.
        EXPECT_GT(run.svc->deviceSwitch(d).bytesRead(FlashPort::Aquoman),
                  0) << "device " << d;
    }
}

TEST_F(QueryServiceTest, ProfilesCarryExactCostAttribution)
{
    ConcurrentRun run = runConcurrent(4, 8);
    for (std::size_t i = 0; i < run.ids.size(); ++i) {
        const QueryRecord &rec = run.svc->record(run.ids[i]);
        std::string what = "q" + std::to_string(kQueries[i]);
        ASSERT_FALSE(rec.profile.root.children.empty()) << what;
        // The tree's pre-order seconds reproduce the modelled device
        // time plus the priced host phase bitwise.
        EXPECT_EQ(rec.profile.totalSeconds(),
                  rec.stats.deviceSeconds + rec.hostFinishSec)
            << what;
        // Every node's stage decomposition sums exactly to its
        // seconds (StageSeconds::total() is the accrual order).
        std::function<void(const obs::ProfileNode &)> check =
            [&](const obs::ProfileNode &n) {
                EXPECT_EQ(n.stages.total(), n.selfSeconds())
                    << what << " node " << n.name;
                for (const obs::ProfileNode &c : n.children)
                    check(c);
            };
        check(rec.profile.root);
    }

    // Aggregate bottleneck histogram covers exactly the completed
    // Table Tasks.
    ServiceStats agg = run.svc->aggregate();
    std::int64_t attributed = 0;
    for (const auto &[stage, n] : agg.bottleneckTaskCounts)
        attributed += n;
    std::int64_t tasks = 0;
    for (QueryId id : run.ids)
        tasks += static_cast<std::int64_t>(
            run.svc->record(id).stats.tasks.size());
    EXPECT_EQ(attributed, tasks);
}

TEST_F(QueryServiceTest, LedgersSurviveAuditAcrossTheArray)
{
    ConcurrentRun run = runConcurrent(4, 8);
    std::int64_t device_flash_total = 0;
    for (std::size_t i = 0; i < run.ids.size(); ++i) {
        const QueryRecord &rec = run.svc->record(run.ids[i]);
        obs::LedgerAudit audit;
        for (const TableTaskRecord &t : rec.stats.tasks) {
            audit.taskSeconds.push_back(t.seconds);
            audit.taskFlashBytes.push_back(t.flashBytes);
        }
        audit.deviceSeconds = rec.stats.deviceSeconds;
        audit.deviceFlashBytes = rec.stats.deviceFlashBytes;
        std::string err;
        EXPECT_TRUE(obs::auditLedgers(audit, &err))
            << "q" << kQueries[i] << ": " << err;
        device_flash_total += rec.stats.deviceFlashBytes;
    }

    // Switch-port partition: the per-device AQUOMAN-port ledgers
    // partition the queries' flash bytes exactly (the scheduler's
    // integer byte split rides its remainder on the last stripe).
    obs::LedgerAudit port_audit;
    for (int d = 0; d < run.svc->numDevices(); ++d)
        port_audit.portBytes.push_back(
            run.svc->deviceSwitch(d).bytesRead(FlashPort::Aquoman));
    port_audit.expectedPortTotal = device_flash_total;
    std::string err;
    EXPECT_TRUE(obs::auditLedgers(port_audit, &err)) << err;
}

TEST_F(QueryServiceTest, RuntimeSuspensionReportsStructuredReason)
{
    auto svc = makeService(4, 8, /*query_dram_bytes=*/4096);
    QueryId id = svc->submit(tpchQuery(3, kSf));
    svc->drain();

    const QueryRecord &rec = svc->record(id);
    EXPECT_EQ(rec.state, QueryState::Done);
    EXPECT_EQ(rec.suspendReason, obs::SuspendReason::DramOverflow);
    EXPECT_EQ(rec.profile.suspend, obs::SuspendReason::DramOverflow);

    // The suspension triggered a flight-recorder dump naming the
    // query.
    EXPECT_GE(svc->flightDumps(), 1);
    EXPECT_NE(svc->lastFlightDump().find("flight recorder"),
              std::string::npos);
    EXPECT_NE(svc->lastFlightDump().find(rec.name), std::string::npos);

    ServiceStats agg = svc->aggregate();
    EXPECT_EQ(agg.suspendReasonCounts.at("dram_overflow"), 1);
}

TEST_F(QueryServiceTest, AdmissionFailureReportsAdmissionDram)
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.queryDramBytes = cfg.device.dramBytes + 1;
    QueryService svc(cfg);
    installTables(svc);

    QueryId id = svc.submit(tpchQuery(6, kSf));
    svc.drain();

    const QueryRecord &rec = svc.record(id);
    EXPECT_EQ(rec.state, QueryState::Done);
    EXPECT_EQ(rec.suspendReason, obs::SuspendReason::AdmissionDram);
    EXPECT_EQ(rec.profile.suspend, obs::SuspendReason::AdmissionDram);
    // The host ran the query whole; its operator tree hangs off the
    // profile's host phase.
    ASSERT_FALSE(rec.profile.root.children.empty());
    EXPECT_FALSE(rec.profile.root.children.back().children.empty());

    EXPECT_GE(svc.flightDumps(), 1);
    EXPECT_NE(svc.lastFlightDump().find("admission"), std::string::npos);
}

TEST_F(QueryServiceTest, FlightRecorderObservesHealthyRuns)
{
    auto svc = makeService(2, 8);
    QueryId id = svc->submit(tpchQuery(6, kSf));
    svc->drain();

    EXPECT_EQ(svc->record(id).state, QueryState::Done);
    // Healthy run: events recorded, but nothing dumped.
    EXPECT_GT(svc->flightRecorder().recorded(), 0);
    EXPECT_EQ(svc->flightDumps(), 0);
    EXPECT_TRUE(svc->lastFlightDump().empty());
    bool saw_submit = false, saw_done = false;
    for (const obs::FlightEvent &ev : svc->flightRecorder().snapshot()) {
        saw_submit |= ev.category == "submit";
        saw_done |= ev.category == "done";
    }
    EXPECT_TRUE(saw_submit);
    EXPECT_TRUE(saw_done);
}

} // namespace
} // namespace aquoman::service
