/** @file
 * Service-level observability contracts for the SLO engine and
 * tail-based trace sampling: the engine's timeline JSON and the
 * sampled simulation trace are byte-identical across AQUOMAN_THREADS
 * values; queries that violate their SLO, are shed, or suspend always
 * retain their span trees; sampled-out healthy queries leave zero
 * spans in the export.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::service {
namespace {

using tpch::TpchConfig;
using tpch::TpchDatabase;
using tpch::tpchQuery;

constexpr double kSf = 0.01;

const TpchDatabase &
database()
{
    static TpchDatabase db = [] {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        return TpchDatabase::generate(cfg);
    }();
    return db;
}

/**
 * A small two-tenant service run: "strict" (an SLO no completion can
 * meet, so every one of its queries violates) and "loose" (an SLO
 * nothing misses). Queries alternate tenants with staggered arrivals.
 */
struct RunResult
{
    std::string sloJson;
    std::string traceJson;
    std::vector<QueryId> kept;     ///< traceKept == true
    std::vector<QueryId> sampledOut;
    std::vector<QueryId> violated;
    std::set<std::int64_t> groupsInTrace;
};

RunResult
runWorkload(int sample_n)
{
    const TpchDatabase &db = database();

    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    cfg.slo.windowSec = 0.05;
    cfg.traceSampleEveryN = sample_n;
    TenantConfig strict;
    strict.name = "strict";
    strict.sloSec = 1e-9;
    TenantConfig loose;
    loose.name = "loose";
    loose.sloSec = 1e9;
    cfg.tenants = {strict, loose};

    QueryService svc(cfg);
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());

    const std::vector<int> qs{6, 14, 6, 14, 6, 14, 6, 14, 6, 14};
    for (std::size_t i = 0; i < qs.size(); ++i)
        svc.submit(tpchQuery(qs[i], kSf), 0.001 * static_cast<double>(i),
                   static_cast<int>(i % 2));
    svc.drain();

    RunResult out;
    out.sloJson = svc.sloEngine().jsonString();
    obs::SimTracer &tracer = obs::SimTracer::global();
    out.traceJson = tracer.toJson();
    for (const obs::TraceEvent &ev : tracer.events())
        if (ev.group >= 0)
            out.groupsInTrace.insert(ev.group);
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc.numQueries()); ++id) {
        const QueryRecord &rec = svc.record(id);
        (rec.traceKept ? out.kept : out.sampledOut).push_back(id);
        if (rec.sloViolated)
            out.violated.push_back(id);
    }
    return out;
}

class SloServiceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = obs::SimTracer::global().enabled();
        threadsBefore = ThreadPool::configuredParallelism();
        obs::SimTracer::global().clear();
        obs::SimTracer::global().enable();
    }

    void
    TearDown() override
    {
        obs::SimTracer::global().clear();
        if (!wasEnabled)
            obs::SimTracer::global().disable();
        ThreadPool::setGlobalParallelism(threadsBefore);
    }

    bool wasEnabled = false;
    int threadsBefore = 1;
};

TEST_F(SloServiceTest, SloReportAndSampledTraceAreThreadInvariant)
{
    ThreadPool::setGlobalParallelism(1);
    RunResult serial = runWorkload(/*sample_n=*/3);

    obs::SimTracer::global().clear();
    ThreadPool::setGlobalParallelism(4);
    RunResult parallel = runWorkload(/*sample_n=*/3);

    // Byte-for-byte: rollups, alerts, and the sampled trace never
    // depend on the worker count.
    EXPECT_EQ(serial.sloJson, parallel.sloJson);
    EXPECT_EQ(serial.traceJson, parallel.traceJson);
    EXPECT_EQ(serial.kept, parallel.kept);
    EXPECT_EQ(serial.sampledOut, parallel.sampledOut);
}

TEST_F(SloServiceTest, ViolatorsAlwaysKeepSpansSampledOutLeaveNone)
{
    RunResult r = runWorkload(/*sample_n=*/4);

    // The strict tenant's completions all violate; the loose tenant's
    // never do, so some of its queries must get sampled out.
    ASSERT_FALSE(r.violated.empty());
    ASSERT_FALSE(r.sampledOut.empty());

    for (QueryId id : r.violated) {
        EXPECT_TRUE(std::find(r.kept.begin(), r.kept.end(), id)
                    != r.kept.end())
            << "violating query " << id << " not kept";
        EXPECT_TRUE(r.groupsInTrace.count(id))
            << "violating query " << id << " has no spans";
    }
    for (QueryId id : r.sampledOut)
        EXPECT_FALSE(r.groupsInTrace.count(id))
            << "sampled-out query " << id << " left spans";

    // Sampling must actually drop events here.
    EXPECT_GT(obs::SimTracer::global().droppedEvents(), 0u);
}

TEST_F(SloServiceTest, SamplingOffKeepsEveryQuery)
{
    RunResult r = runWorkload(/*sample_n=*/0);
    // With sampling disabled every record stays kept, nothing is
    // dropped, and events are not even stamped with sampling groups.
    EXPECT_TRUE(r.sampledOut.empty());
    EXPECT_EQ(r.kept.size(), 10u);
    EXPECT_TRUE(r.groupsInTrace.empty());
    EXPECT_GT(obs::SimTracer::global().eventCount(), 0u);
    EXPECT_EQ(obs::SimTracer::global().droppedEvents(), 0u);
}

TEST_F(SloServiceTest, EngineTotalsMatchServiceRecords)
{
    RunResult r = runWorkload(/*sample_n=*/0);
    (void)r;
    // Rebuild a service to read engine totals directly.
    const TpchDatabase &db = database();
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    cfg.slo.windowSec = 0.05;
    TenantConfig strict;
    strict.name = "strict";
    strict.sloSec = 1e-9;
    cfg.tenants = {strict};
    QueryService svc(cfg);
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
    for (int i = 0; i < 4; ++i)
        svc.submit(tpchQuery(6, kSf), 0.0, 0);
    svc.drain();

    obs::SloEngine::TenantTotals t =
        svc.sloEngine().totals("strict");
    EXPECT_EQ(t.completed, 4);
    EXPECT_EQ(t.violations, 4); // nothing meets a 1 ns SLO
    EXPECT_EQ(t.shed, 0);
    EXPECT_DOUBLE_EQ(t.attainment, 0.0);
    // Alerts must have fired for a tenant burning this hard.
    EXPECT_GE(svc.sloEngine().alerts().size(), 1u);
}

} // namespace
} // namespace aquoman::service
