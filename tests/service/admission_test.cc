/** @file
 * Multi-tenant admission-control tests: the DRR weighted-fair scheduler
 * bounds a light tenant's latency against an adversarial heavy tenant
 * (and degenerates to byte-exact FIFO for a single tenant); strict
 * priority classes admit urgent work ahead of any backlog without
 * inversion; per-tenant DRAM quotas gate concurrent admissions at the
 * resolved per-query reservation (the staleness regression); bounded
 * queues shed deterministically — byte-identically across thread
 * counts — and shed queries surface in records, aggregate stats,
 * labeled metrics, and the flight recorder.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/thread_pool.hh"
#include "obs/metrics.hh"
#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::service {
namespace {

using tpch::TpchConfig;
using tpch::TpchDatabase;
using tpch::tpchQuery;

constexpr double kSf = 0.01;

const TpchDatabase &
database()
{
    static TpchDatabase db = [] {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        return TpchDatabase::generate(cfg);
    }();
    return db;
}

void
installTables(QueryService &svc)
{
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
}

TenantConfig
tenant(const std::string &name, int priority = 1, double weight = 1.0,
       std::int64_t quota = 0)
{
    TenantConfig t;
    t.name = name;
    t.priority = priority;
    t.weight = weight;
    t.dramQuotaBytes = quota;
    return t;
}

class AdmissionTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        ThreadPool::setGlobalParallelism(
            ThreadPool::configuredParallelism());
        obs::MetricsRegistry::global().setEnabled(false);
        obs::MetricsRegistry::global().clear();
    }
};

TEST_F(AdmissionTest, SingleExplicitTenantIsByteExactFifo)
{
    // The implicit tenant (empty config) and one explicit default
    // tenant must schedule identically: DRR over one queue is FIFO.
    std::vector<double> done[2];
    for (int variant = 0; variant < 2; ++variant) {
        ServiceConfig cfg;
        cfg.numDevices = 2;
        cfg.admissionLimit = 1;
        if (variant == 1)
            cfg.tenants = {tenant("only")};
        QueryService svc(cfg);
        installTables(svc);
        std::vector<QueryId> ids;
        for (int q : {6, 14, 6, 14})
            ids.push_back(svc.submit(tpchQuery(q, kSf)));
        svc.drain();
        for (QueryId id : ids)
            done[variant].push_back(svc.record(id).doneSec);
    }
    EXPECT_EQ(done[0], done[1]);
}

TEST_F(AdmissionTest, DrrBoundsLightTenantAgainstHeavyBacklog)
{
    // Heavy tenant floods 12 queries; light tenant (same priority,
    // same weight) submits 4 afterwards. Under FIFO the light tenant
    // waits behind the whole flood; under DRR it is served 1-for-1.
    auto run = [&](bool multi_tenant) {
        ServiceConfig cfg;
        cfg.numDevices = 2;
        cfg.admissionLimit = 1;
        if (multi_tenant)
            cfg.tenants = {tenant("heavy"), tenant("light")};
        QueryService svc(cfg);
        installTables(svc);
        std::vector<QueryId> heavy, light;
        for (int i = 0; i < 12; ++i)
            heavy.push_back(
                svc.submit(tpchQuery(6, kSf), 0.0,
                           /*tenant=*/0));
        for (int i = 0; i < 4; ++i)
            light.push_back(
                svc.submit(tpchQuery(6, kSf), 0.0,
                           multi_tenant ? 1 : 0));
        svc.drain();
        double worst_light = 0.0;
        for (QueryId id : light)
            worst_light =
                std::max(worst_light, svc.record(id).latencySec());
        return worst_light;
    };

    double fifo = run(false);
    double drr = run(true);
    // 1-for-1 interleaving serves the 4th light query ~8th overall
    // instead of 16th: a hard 1.5x bound holds with margin.
    EXPECT_LT(drr, fifo / 1.5)
        << "DRR worst light-tenant latency " << drr
        << " vs FIFO " << fifo;
}

TEST_F(AdmissionTest, WeightsSkewServiceWithinAClass)
{
    // weight 3 vs weight 1, both backlogged: the heavy-weighted tenant
    // finishes its batch well before the light one.
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 1;
    cfg.tenants = {tenant("w3", 1, 3.0), tenant("w1", 1, 1.0)};
    QueryService svc(cfg);
    installTables(svc);
    std::vector<QueryId> a, b;
    for (int i = 0; i < 8; ++i) {
        a.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 0));
        b.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 1));
    }
    svc.drain();
    double last_a = 0.0, last_b = 0.0;
    for (QueryId id : a)
        last_a = std::max(last_a, svc.record(id).doneSec);
    for (QueryId id : b)
        last_b = std::max(last_b, svc.record(id).doneSec);
    EXPECT_LT(last_a, last_b);
}

TEST_F(AdmissionTest, NoPriorityInversion)
{
    // A low-priority backlog is queued first; a high-priority query
    // arrives later but must take the very next admission slot: only
    // the one query already in flight may finish before it.
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 1;
    cfg.tenants = {tenant("urgent", /*priority=*/0),
                   tenant("bulk", /*priority=*/1)};
    QueryService svc(cfg);
    installTables(svc);
    std::vector<QueryId> bulk;
    for (int i = 0; i < 6; ++i)
        bulk.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 1));
    QueryId urgent = svc.submit(tpchQuery(6, kSf), 0.0, 0);
    svc.drain();

    double urgent_done = svc.record(urgent).doneSec;
    int bulk_before_urgent = 0;
    for (QueryId id : bulk)
        bulk_before_urgent += svc.record(id).doneSec < urgent_done;
    EXPECT_LE(bulk_before_urgent, 1);
}

TEST_F(AdmissionTest, QuotaGatesAtTheResolvedPerQueryReservation)
{
    // Regression for per-query DRAM staleness: the service must gate
    // quotas on resolvedQueryDramBytes() captured at construction. A
    // quota of exactly one reservation admits and completes; one byte
    // less can never fit and sheds every arrival immediately.
    ServiceConfig base;
    base.numDevices = 2;
    base.admissionLimit = 4;
    std::int64_t per_query = base.resolvedQueryDramBytes();

    for (std::int64_t quota : {per_query, per_query - 1}) {
        ServiceConfig cfg = base;
        cfg.tenants = {tenant("quota", 1, 1.0, quota)};
        QueryService svc(cfg);
        installTables(svc);
        std::vector<QueryId> ids;
        for (int i = 0; i < 3; ++i)
            ids.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 0));
        svc.drain();
        for (QueryId id : ids) {
            const QueryRecord &rec = svc.record(id);
            if (quota == per_query) {
                EXPECT_EQ(rec.state, QueryState::Done);
                EXPECT_FALSE(rec.shed);
            } else {
                EXPECT_EQ(rec.state, QueryState::Shed);
                EXPECT_TRUE(rec.shed);
            }
        }
        ServiceStats agg = svc.aggregate();
        EXPECT_EQ(agg.shedTotal, quota == per_query ? 0 : 3);
    }
}

TEST_F(AdmissionTest, QuotaSerializesConcurrentAdmissions)
{
    // Quota for one reservation but admission slots for four: the
    // quota alone must serialize the tenant's queries (strictly
    // increasing queue waits), and nothing is shed.
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 4;
    cfg.tenants = {tenant("narrow", 1, 1.0,
                          cfg.resolvedQueryDramBytes())};
    QueryService svc(cfg);
    installTables(svc);
    std::vector<QueryId> ids;
    for (int i = 0; i < 3; ++i)
        ids.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 0));
    svc.drain();
    double prev = -1.0;
    for (QueryId id : ids) {
        const QueryRecord &rec = svc.record(id);
        EXPECT_EQ(rec.state, QueryState::Done);
        EXPECT_GT(rec.queueWaitSec, prev);
        prev = rec.queueWaitSec;
    }
}

TEST_F(AdmissionTest, BoundedQueueShedsDeterministicallyAcrossThreads)
{
    auto run = [&] {
        ServiceConfig cfg;
        cfg.numDevices = 2;
        cfg.admissionLimit = 1;
        cfg.maxQueuedPerTenant = 2;
        cfg.tenants = {tenant("bounded")};
        QueryService svc(cfg);
        installTables(svc);
        std::vector<QueryId> ids;
        for (int i = 0; i < 8; ++i)
            ids.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 0));
        svc.drain();
        std::vector<int> shed_flags;
        std::vector<double> done;
        for (QueryId id : ids) {
            shed_flags.push_back(svc.record(id).shed ? 1 : 0);
            done.push_back(svc.record(id).doneSec);
        }
        ServiceStats agg = svc.aggregate();
        return std::make_tuple(shed_flags, done, agg.shedTotal,
                               agg.makespanSec);
    };

    ThreadPool::setGlobalParallelism(1);
    auto t1 = run();
    ThreadPool::setGlobalParallelism(4);
    auto t4 = run();
    // Shed decisions and all modelled times are byte-identical for
    // every AQUOMAN_THREADS value.
    EXPECT_EQ(t1, t4);

    // With everything queued at t=0, an admission window of 1 and a
    // queue bound of 2, exactly 8 - 1 - 2 = 5 arrivals tail-drop.
    EXPECT_EQ(std::get<2>(t1), 5);
    int shed_n = 0;
    for (int f : std::get<0>(t1))
        shed_n += f;
    EXPECT_EQ(shed_n, 5);
}

TEST_F(AdmissionTest, ShedQueriesSurfaceEverywhere)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.clear();
    reg.setEnabled(true);

    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 1;
    cfg.maxQueuedPerTenant = 1;
    cfg.tenants = {tenant("t0")};
    QueryService svc(cfg);
    installTables(svc);

    int completions = 0;
    svc.setOnComplete([&](const QueryRecord &) { ++completions; });
    std::vector<QueryId> ids;
    for (int i = 0; i < 4; ++i)
        ids.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 0));
    svc.drain();

    // Open-loop drivers see every query exactly once, shed or not.
    EXPECT_EQ(completions, 4);

    const QueryRecord &last = svc.record(ids.back());
    ASSERT_TRUE(last.shed);
    EXPECT_EQ(last.state, QueryState::Shed);
    EXPECT_EQ(std::string(queryStateName(QueryState::Shed)), "Shed");
    // Terminal at its arrival time, with the lifecycle ending in Shed.
    EXPECT_EQ(last.doneSec, last.submitSec);
    ASSERT_GE(last.lifecycle.size(), 2u);
    EXPECT_EQ(last.lifecycle.back().state, QueryState::Shed);

    ServiceStats agg = svc.aggregate();
    EXPECT_EQ(agg.shedTotal, 2);
    EXPECT_EQ(agg.completed, 2);
    EXPECT_EQ(agg.shedRate, 0.5);
    ASSERT_EQ(agg.tenants.size(), 1u);
    EXPECT_EQ(agg.tenants[0].name, "t0");
    EXPECT_EQ(agg.tenants[0].submitted, 4);
    EXPECT_EQ(agg.tenants[0].shed, 2);
    EXPECT_EQ(agg.tenants[0].shedRate, 0.5);

    // Labeled per-tenant metrics recorded the sheds and latencies.
    EXPECT_EQ(reg.counter(obs::labeledMetric(
                  "service.tenant_shed_total", {{"tenant", "t0"}})),
              2.0);
    EXPECT_EQ(reg.histogram(
                     obs::labeledMetric("service.tenant_latency_seconds",
                                        {{"tenant", "t0"}}))
                  .count(),
              2);

    // The flight recorder logged the drops.
    int shed_events = 0;
    for (const obs::FlightEvent &ev : svc.flightRecorder().snapshot())
        shed_events += ev.category == "shed";
    EXPECT_EQ(shed_events, 2);
}

TEST_F(AdmissionTest, PerTenantStatsPartitionTheAggregate)
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    cfg.tenants = {tenant("a", 0, 1.0), tenant("b", 1, 1.0)};
    cfg.tenants[0].sloSec = 1e9; // everything within SLO
    QueryService svc(cfg);
    installTables(svc);
    for (int i = 0; i < 3; ++i) {
        svc.submit(tpchQuery(6, kSf), 0.0, 0);
        svc.submit(tpchQuery(14, kSf), 0.0, 1);
    }
    svc.drain();

    ServiceStats agg = svc.aggregate();
    ASSERT_EQ(agg.tenants.size(), 2u);
    EXPECT_EQ(agg.tenants[0].completed + agg.tenants[1].completed,
              agg.completed);
    EXPECT_EQ(agg.tenants[0].withinSlo, 3); // explicit generous SLO
    EXPECT_EQ(agg.tenants[1].withinSlo, 3); // no SLO => all count
    for (const TenantStats &t : agg.tenants) {
        EXPECT_EQ(t.submitted, 3);
        EXPECT_EQ(t.shed, 0);
        EXPECT_GT(t.p50LatencySec, 0.0);
        EXPECT_LE(t.p50LatencySec, t.p90LatencySec);
        EXPECT_LE(t.p90LatencySec, t.p99LatencySec);
        EXPECT_GT(t.goodputQps, 0.0);
    }
}

} // namespace
} // namespace aquoman::service
