/** @file
 * Latency-anatomy contracts of the query service: every completed
 * query's wait-state ledger partitions (doneSec - submitSec) into the
 * six exclusive classes bitwise; the ledgers, blame matrix, and
 * per-tenant contention totals are byte-identical across
 * AQUOMAN_THREADS x AQUOMAN_BATCH; blame row sums ARE the per-tenant
 * contention totals; shed queries carry structured reasons with
 * all-zero ledgers; wait segments are gated while the ledger is not;
 * and an empty service run exports valid, all-zero observability
 * artifacts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/batch_mode.hh"
#include "common/thread_pool.hh"
#include "obs/latency_anatomy.hh"
#include "obs/trace.hh"
#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

#include "../../tools/bench_diff_core.hh"

namespace aquoman::service {
namespace {

using tpch::TpchConfig;
using tpch::TpchDatabase;
using tpch::tpchQuery;

constexpr double kSf = 0.01;

const TpchDatabase &
database()
{
    static TpchDatabase db = [] {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        return TpchDatabase::generate(cfg);
    }();
    return db;
}

void
installTables(QueryService &svc)
{
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
}

TenantConfig
tenant(const std::string &name, int priority = 1, double weight = 1.0,
       std::int64_t quota = 0)
{
    TenantConfig t;
    t.name = name;
    t.priority = priority;
    t.weight = weight;
    t.dramQuotaBytes = quota;
    return t;
}

/**
 * The contended two-tenant workload the anatomy tests share: "fast"
 * (priority 0) races "greedy", whose DRAM quota admits exactly one
 * reservation — so its queries queue behind their own quota (dram_wait)
 * as well as behind full admission slots (admission_queue), and
 * admitted queries contend for two devices (device_busy).
 */
std::unique_ptr<QueryService>
makeContendedService()
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    cfg.slo.windowSec = 0.05;
    cfg.tenants = {tenant("fast", 0, 2.0),
                   tenant("greedy", 1, 1.0,
                          cfg.resolvedQueryDramBytes())};
    auto svc = std::make_unique<QueryService>(cfg);
    installTables(*svc);
    return svc;
}

void
submitContended(QueryService &svc)
{
    // Near-simultaneous arrivals so the burst overwhelms both the two
    // admission slots (admission_queue) and greedy's one-reservation
    // quota (dram_wait) while devices stay busy (device_busy).
    const int qs[] = {6, 14, 6, 14, 6, 14, 6, 14, 6, 14, 6, 14};
    for (int i = 0; i < 12; ++i)
        svc.submit(tpchQuery(qs[i], kSf),
                   1e-6 * static_cast<double>(i), i % 2);
    svc.drain();
}

/** Full-precision render of every ledger, contention total, and blame
 *  cell — byte-equality of two fingerprints is the determinism bar. */
std::string
fingerprint(const QueryService &svc, const ServiceStats &stats)
{
    std::ostringstream os;
    os.precision(17);
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc.numQueries()); ++id) {
        const QueryRecord &r = svc.record(id);
        os << id << ':' << r.submitSec << ',' << r.doneSec;
        for (int i = 0; i < obs::kNumWaitClasses; ++i)
            os << ',' << r.waitLedger.sec[i];
        os << ',' << r.contentionWaitSec << ';';
    }
    os << '|';
    for (double c : stats.blame.cells)
        os << c << ',';
    for (const TenantStats &t : stats.tenants)
        os << t.contentionWaitSec << ';';
    return os.str();
}

class WaitLedgerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        threadsBefore = ThreadPool::configuredParallelism();
        batchBefore = batchExecutionEnabled();
        segmentsBefore = obs::waitSegmentCollectionEnabled();
        tracerWasEnabled = obs::SimTracer::global().enabled();
    }

    void
    TearDown() override
    {
        ThreadPool::setGlobalParallelism(threadsBefore);
        setBatchExecutionEnabled(batchBefore);
        obs::setWaitSegmentCollection(segmentsBefore);
        obs::SimTracer::global().clear();
        if (!tracerWasEnabled)
            obs::SimTracer::global().disable();
    }

    int threadsBefore = 1;
    bool batchBefore = true;
    bool segmentsBefore = true;
    bool tracerWasEnabled = false;
};

TEST_F(WaitLedgerTest, ExactPartitionForEveryQuery)
{
    auto svc = makeContendedService();
    submitContended(*svc);

    int completed = 0;
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc->numQueries()); ++id) {
        const QueryRecord &r = svc->record(id);
        if (r.shed) {
            for (int i = 0; i < obs::kNumWaitClasses; ++i)
                EXPECT_EQ(r.waitLedger.sec[i], 0.0)
                    << "shed query " << id << " accrued wait";
            continue;
        }
        ++completed;
        std::string err;
        EXPECT_TRUE(obs::validateWaitPartition(
            r.waitLedger, r.doneSec - r.submitSec, &err))
            << "query " << id << ": " << err;
    }
    ASSERT_GT(completed, 0);
}

TEST_F(WaitLedgerTest, ByteIdenticalAcrossThreadsAndBatchModes)
{
    std::vector<std::string> prints;
    for (int threads : {1, 4}) {
        for (bool batch : {false, true}) {
            ThreadPool::setGlobalParallelism(threads);
            setBatchExecutionEnabled(batch);
            auto svc = makeContendedService();
            submitContended(*svc);
            ServiceStats stats = svc->aggregate();
            prints.push_back(fingerprint(*svc, stats));
        }
    }
    for (std::size_t i = 1; i < prints.size(); ++i)
        EXPECT_EQ(prints[0], prints[i])
            << "ledger fingerprint diverged at config " << i;
}

TEST_F(WaitLedgerTest, BlameRowSumsAreTenantContentionTotals)
{
    auto svc = makeContendedService();
    submitContended(*svc);
    ServiceStats stats = svc->aggregate();

    ASSERT_EQ(stats.blame.n,
              static_cast<int>(stats.tenants.size()));
    double perQuery = 0.0;
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc->numQueries()); ++id)
        perQuery += svc->record(id).contentionWaitSec;
    for (std::size_t ti = 0; ti < stats.tenants.size(); ++ti)
        EXPECT_EQ(stats.tenants[ti].contentionWaitSec,
                  stats.blame.rowSum(static_cast<int>(ti)))
            << "tenant " << stats.tenants[ti].name;
    EXPECT_EQ(stats.contentionWaitSec, stats.blame.total());
    // Per-query accrual groups the same quantities differently, so it
    // reproduces the matrix total only to rounding.
    EXPECT_NEAR(perQuery, stats.blame.total(),
                1e-9 * std::max(1.0, stats.blame.total()));
    EXPECT_GT(stats.contentionWaitSec, 0.0);
}

TEST_F(WaitLedgerTest, ContendedRunExercisesQueueDramAndBusyClasses)
{
    auto svc = makeContendedService();
    submitContended(*svc);
    ServiceStats stats = svc->aggregate();

    EXPECT_GT(stats.waitLedger.at(obs::WaitClass::AdmissionQueue), 0.0);
    EXPECT_GT(stats.waitLedger.at(obs::WaitClass::DramWait), 0.0);
    EXPECT_GT(stats.waitLedger.at(obs::WaitClass::DeviceBusy), 0.0);
    EXPECT_GT(stats.waitLedger.at(obs::WaitClass::DeviceExec), 0.0);
    // dram_wait is self-inflicted: greedy must blame itself.
    EXPECT_GT(stats.blame.at(1, 1), 0.0);

    // The aggregate ledger is the per-query ledgers summed (the two
    // sides accumulate in different orders: rounding-level equality).
    double classSum[obs::kNumWaitClasses] = {};
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc->numQueries()); ++id)
        for (int i = 0; i < obs::kNumWaitClasses; ++i)
            classSum[i] += svc->record(id).waitLedger.sec[i];
    for (int i = 0; i < obs::kNumWaitClasses; ++i)
        EXPECT_NEAR(stats.waitLedger.sec[i], classSum[i],
                    1e-9 * std::max(1.0, classSum[i]))
            << obs::waitClassName(static_cast<obs::WaitClass>(i));
}

TEST_F(WaitLedgerTest, HostClassesAreMutuallyExclusive)
{
    auto svc = makeContendedService();
    submitContended(*svc);
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc->numQueries()); ++id) {
        const QueryRecord &r = svc->record(id);
        if (r.shed)
            continue;
        if (r.suspendCount > 0)
            EXPECT_EQ(r.waitLedger.at(obs::WaitClass::HostFinish), 0.0)
                << "suspended query " << id
                << " accrued host_finish";
        else
            EXPECT_EQ(r.waitLedger.at(obs::WaitClass::SuspendHost), 0.0)
                << "never-suspended query " << id
                << " accrued suspend_host";
    }
}

TEST_F(WaitLedgerTest, ShedQueriesCarryStructuredReasons)
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 1;
    cfg.maxQueuedPerTenant = 1;
    // "starved" gets a quota below a single reservation, so admission
    // can never reserve for it and sheds at the head of the queue.
    cfg.tenants = {tenant("ok"), tenant("starved", 1, 1.0, 1)};
    QueryService svc(cfg);
    installTables(svc);
    std::vector<QueryId> ok, starved;
    for (int i = 0; i < 4; ++i)
        ok.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 0));
    starved.push_back(svc.submit(tpchQuery(6, kSf), 0.0, 1));
    svc.drain();

    std::int64_t queueFull = 0, quotaShed = 0;
    for (QueryId id = 0;
         id < static_cast<QueryId>(svc.numQueries()); ++id) {
        const QueryRecord &r = svc.record(id);
        if (!r.shed) {
            EXPECT_TRUE(r.shedReason.empty());
            continue;
        }
        for (int i = 0; i < obs::kNumWaitClasses; ++i)
            EXPECT_EQ(r.waitLedger.sec[i], 0.0);
        if (r.shedReason == "queue_full")
            ++queueFull;
        else if (r.shedReason == "quota_below_reservation")
            ++quotaShed;
        else
            ADD_FAILURE() << "query " << id
                          << " shed with unexpected reason '"
                          << r.shedReason << "'";
    }
    EXPECT_GT(queueFull, 0);
    EXPECT_GT(quotaShed, 0);

    ServiceStats stats = svc.aggregate();
    EXPECT_EQ(stats.shedReasonCounts["queue_full"], queueFull);
    EXPECT_EQ(stats.shedReasonCounts["quota_below_reservation"],
              quotaShed);
    EXPECT_EQ(queueFull + quotaShed, stats.shedTotal);
}

TEST_F(WaitLedgerTest, SegmentsAreGatedLedgerIsNot)
{
    obs::setWaitSegmentCollection(false);
    auto gated = makeContendedService();
    submitContended(*gated);
    for (QueryId id = 0;
         id < static_cast<QueryId>(gated->numQueries()); ++id) {
        const QueryRecord &r = gated->record(id);
        EXPECT_TRUE(r.waitSegments.empty());
        if (!r.shed)
            EXPECT_GT(r.waitLedger.total(), 0.0);
    }

    obs::setWaitSegmentCollection(true);
    auto open = makeContendedService();
    submitContended(*open);
    int withSegments = 0;
    for (QueryId id = 0;
         id < static_cast<QueryId>(open->numQueries()); ++id) {
        const QueryRecord &r = open->record(id);
        if (r.shed || r.waitSegments.empty())
            continue;
        ++withSegments;
        // The compressed critical path tiles [submit, done]
        // contiguously and never keeps two mergeable neighbours.
        std::vector<obs::WaitSegment> path =
            obs::criticalPath(r.waitSegments, &r.profile);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front().startSec, r.submitSec);
        EXPECT_EQ(path.back().endSec, r.doneSec);
        for (std::size_t i = 0; i < path.size(); ++i) {
            EXPECT_GT(path[i].endSec, path[i].startSec);
            if (i == 0)
                continue;
            EXPECT_EQ(path[i].startSec, path[i - 1].endSec);
            EXPECT_FALSE(path[i].cls == path[i - 1].cls
                         && path[i].device == path[i - 1].device)
                << "unmerged neighbours at segment " << i;
        }
    }
    EXPECT_GT(withSegments, 0);
}

TEST_F(WaitLedgerTest, SloStoreCarriesQueueWaitAndBlameSeries)
{
    auto svc = makeContendedService();
    submitContended(*svc);
    const obs::TimeSeriesStore &ts = svc->sloEngine().store();
    ASSERT_FALSE(ts.empty());

    obs::Histogram qw = ts.histogramInRange(
        obs::labeledMetric("slo_queue_wait_seconds",
                           {{"tenant", "fast"}}),
        ts.firstWindow(), ts.lastWindow());
    EXPECT_GT(qw.count(), 0);

    // dram_wait shows up as greedy blaming itself in the windowed twin
    // of the blame matrix.
    double selfBlame = ts.counterInRange(
        obs::labeledMetric("slo_blame_seconds",
                           {{"culprit", "greedy"},
                            {"tenant", "greedy"}}),
        ts.firstWindow(), ts.lastWindow());
    EXPECT_GT(selfBlame, 0.0);
}

TEST_F(WaitLedgerTest, EmptyServiceRunExportsCleanly)
{
    obs::SimTracer::global().clear();
    obs::SimTracer::global().enable();

    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    cfg.slo.windowSec = 0.05;
    TenantConfig a = tenant("a"), b = tenant("b");
    // Objectives make the engine list both tenants even though no
    // query ever arrives — the export must still show zero rollups.
    a.sloSec = b.sloSec = 1.0;
    cfg.tenants = {a, b};
    QueryService svc(cfg);
    installTables(svc);
    svc.drain(); // no submissions at all

    ServiceStats stats = svc.aggregate();
    EXPECT_EQ(stats.completed, 0);
    EXPECT_EQ(stats.shedTotal, 0);
    EXPECT_TRUE(stats.shedReasonCounts.empty());
    EXPECT_EQ(stats.waitLedger.total(), 0.0);
    ASSERT_EQ(stats.blame.n, 2);
    EXPECT_EQ(stats.blame.total(), 0.0);
    EXPECT_EQ(stats.blame.rowSum(0), 0.0);
    EXPECT_EQ(stats.blame.rowSum(1), 0.0);
    EXPECT_EQ(stats.contentionWaitSec, 0.0);

    // The SLO timeline must still be valid JSON with zero rollups.
    std::string slo = svc.sloEngine().jsonString();
    tools::JsonParser ps(slo);
    tools::JsonValue root;
    ASSERT_TRUE(tools::parseJsonValue(ps, &root)) << ps.error;
    const tools::JsonValue *tenants = root.find("tenants");
    ASSERT_NE(tenants, nullptr);
    EXPECT_EQ(tenants->array.size(), 2u);
    for (const tools::JsonValue &t : tenants->array) {
        const tools::JsonValue *windows = t.find("windows");
        ASSERT_NE(windows, nullptr);
        EXPECT_TRUE(windows->array.empty());
        const tools::JsonValue *totals = t.find("totals");
        ASSERT_NE(totals, nullptr);
        EXPECT_EQ(totals->find("completed")->number, 0.0);
    }
    const tools::JsonValue *alerts = root.find("alerts");
    ASSERT_NE(alerts, nullptr);
    EXPECT_TRUE(alerts->array.empty());

    // No queries ran, so the enabled tracer holds zero spans and its
    // export is still valid JSON.
    EXPECT_EQ(obs::SimTracer::global().eventCount(), 0u);
    std::string trace = obs::SimTracer::global().toJson();
    tools::JsonParser tps(trace);
    tools::JsonValue troot;
    EXPECT_TRUE(tools::parseJsonValue(tps, &troot)) << tps.error;
}

} // namespace
} // namespace aquoman::service
