/** @file
 * SLO engine contracts: violation classification, whole-horizon totals
 * and error-budget accounting, multi-window burn-rate alerting with
 * edge-triggered re-arm, the alert sink, and byte-stable timeline JSON
 * for a fixed event stream.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/slo.hh"

namespace aquoman::obs {
namespace {

SloConfig
oneTenantConfig(double target_sec = 0.1, double attainment = 0.9)
{
    SloConfig cfg;
    cfg.windowSec = 1.0;
    cfg.objectives = {{"t0", target_sec, attainment}};
    // One aggressive rule so tests can trip it quickly: burn >= 2 over
    // both the last window and the last 3 windows.
    cfg.rules = {{"fast", /*longWindows=*/3, /*shortWindows=*/1,
                  /*threshold=*/2.0}};
    return cfg;
}

TEST(SloEngine, ViolationClassification)
{
    SloEngine eng(oneTenantConfig(0.1));
    EXPECT_TRUE(eng.active());
    EXPECT_FALSE(eng.isViolation("t0", 0.1));   // boundary: within
    EXPECT_TRUE(eng.isViolation("t0", 0.1001));
    EXPECT_FALSE(eng.isViolation("unknown", 99.0));
}

TEST(SloEngine, TotalsAndBudget)
{
    // Attainment target 0.9 => budget is 10% of total events.
    SloEngine eng(oneTenantConfig(0.1, 0.9));
    for (int i = 0; i < 8; ++i)
        eng.recordCompletion("t0", 0.1 * i, 0.05); // within
    eng.recordCompletion("t0", 0.9, 0.5);          // violation
    eng.recordShed("t0", 0.95);                    // bad event
    eng.recordSuspend("t0", 0.96);
    eng.finish(1.0);

    SloEngine::TenantTotals t = eng.totals("t0");
    EXPECT_EQ(t.completed, 9);
    EXPECT_EQ(t.violations, 1);
    EXPECT_EQ(t.shed, 1);
    EXPECT_EQ(t.suspended, 1);
    EXPECT_DOUBLE_EQ(t.attainment, 8.0 / 9.0);
    // bad = violations + shed = 2; budget = (9 + 1) * 0.1 = 1.
    EXPECT_DOUBLE_EQ(t.budgetConsumed, 2.0);
}

TEST(SloEngine, BurnRateAlertFiresOnSustainedViolations)
{
    SloEngine eng(oneTenantConfig(0.1, 0.9));
    std::vector<SloAlert> sunk;
    eng.setAlertSink([&](const SloAlert &a) { sunk.push_back(a); });

    // Windows 0-2: every completion violates => single-window burn =
    // (1/1)/0.1 = 10 >= 2, and the 3-window burn too.
    for (int w = 0; w < 3; ++w)
        eng.recordCompletion("t0", w + 0.5, 1.0);
    eng.finish(3.0);

    ASSERT_GE(eng.alerts().size(), 1u);
    const SloAlert &a = eng.alerts().front();
    EXPECT_EQ(a.tenant, "t0");
    EXPECT_EQ(a.rule, "fast");
    EXPECT_GE(a.shortBurn, 2.0);
    EXPECT_GE(a.longBurn, 2.0);
    // Timestamped at the close of the tripping window.
    EXPECT_DOUBLE_EQ(a.atSec, 1.0);
    EXPECT_EQ(sunk.size(), eng.alerts().size());

    // Edge-triggered: the condition held continuously, so exactly one
    // firing despite three qualifying windows.
    EXPECT_EQ(eng.alerts().size(), 1u);
}

TEST(SloEngine, AlertReArmsAfterQuietWindow)
{
    SloEngine eng(oneTenantConfig(0.1, 0.9));
    // Window 0: violations -> fires. Windows 1-3: healthy completions
    // push the 1- and 3-window burns to zero -> re-arm. Window 4:
    // violations again -> second firing.
    eng.recordCompletion("t0", 0.5, 1.0);
    for (int w = 1; w <= 3; ++w)
        for (int i = 0; i < 4; ++i)
            eng.recordCompletion("t0", w + 0.1 + 0.1 * i, 0.01);
    // Enough violations that the 3-window burn (windows 2-4: 8 healthy
    // + 4 bad => (4/12)/0.1 = 3.3) clears the threshold again.
    for (int i = 0; i < 4; ++i)
        eng.recordCompletion("t0", 4.3 + 0.1 * i, 1.0);
    eng.finish(5.0);

    ASSERT_EQ(eng.alerts().size(), 2u);
    EXPECT_DOUBLE_EQ(eng.alerts()[0].atSec, 1.0);
    EXPECT_DOUBLE_EQ(eng.alerts()[1].atSec, 5.0);
}

TEST(SloEngine, NoObjectiveMeansNoAlerts)
{
    SloConfig cfg;
    cfg.windowSec = 1.0; // no objectives at all
    SloEngine eng(cfg);
    EXPECT_FALSE(eng.active());
    eng.recordCompletion("t0", 0.5, 100.0);
    eng.recordShed("t0", 0.6);
    eng.finish(2.0);
    EXPECT_TRUE(eng.alerts().empty());
    SloEngine::TenantTotals t = eng.totals("t0");
    EXPECT_EQ(t.completed, 1);
    EXPECT_EQ(t.violations, 0);
    EXPECT_DOUBLE_EQ(t.budgetConsumed, 0.0);
}

TEST(SloEngine, DefaultRulesAndAttainmentNormalization)
{
    SloConfig cfg;
    cfg.windowSec = 0.5;
    cfg.defaultAttainment = 0.97;
    // Attainment outside (0, 1) falls back to defaultAttainment.
    cfg.objectives = {{"t0", 1.0, 0.0}};
    SloEngine eng(cfg);
    EXPECT_EQ(eng.config().rules.size(),
              defaultBurnRateRules().size());
    ASSERT_EQ(eng.config().objectives.size(), 1u);
    EXPECT_DOUBLE_EQ(eng.config().objectives[0].attainment, 0.97);
}

TEST(SloEngine, TimelineJsonIsByteStable)
{
    auto run = [] {
        SloEngine eng(oneTenantConfig(0.1, 0.9));
        for (int i = 0; i < 50; ++i)
            eng.recordCompletion("t0", 0.07 * i,
                                 (i % 7 == 0) ? 0.4 : 0.05);
        eng.recordShed("t0", 1.3);
        eng.finish(4.0);
        return eng.jsonString();
    };
    std::string a = run();
    std::string b = run();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"window_seconds\":1"), std::string::npos) << a;
    EXPECT_NE(a.find("\"tenants\":["), std::string::npos) << a;
    EXPECT_NE(a.find("\"alerts\":["), std::string::npos) << a;
    EXPECT_NE(a.find("\"budget_consumed\""), std::string::npos) << a;
}

TEST(SloEngine, FinishIsIdempotent)
{
    SloEngine eng(oneTenantConfig());
    eng.recordCompletion("t0", 0.5, 1.0);
    eng.finish(1.0);
    std::string first = eng.jsonString();
    std::size_t alerts = eng.alerts().size();
    eng.finish(1.0);
    EXPECT_EQ(eng.jsonString(), first);
    EXPECT_EQ(eng.alerts().size(), alerts);
}

} // namespace
} // namespace aquoman::obs
