/** @file
 * Simulation-trace contract tests: a service run under the tracer
 * produces byte-identical Chrome trace_event JSON for every
 * AQUOMAN_THREADS value (all timestamps are modelled seconds); a
 * standalone device run's Table-Task spans tile [0, deviceSeconds]
 * bitwise; and a traced service run carries at least one track per SSD
 * and one span per scheduled Table Task.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aquoman/device.hh"
#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::obs {
namespace {

using service::QueryService;
using service::ServiceConfig;
using tpch::TpchConfig;
using tpch::TpchDatabase;
using tpch::tpchQuery;

constexpr double kSf = 0.01;
const std::vector<int> kQueries{6, 14, 1, 12};

const TpchDatabase &
database()
{
    static TpchDatabase db = [] {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        return TpchDatabase::generate(cfg);
    }();
    return db;
}

/** Enables a clean tracer for the test, restores the old state after. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = SimTracer::global().enabled();
        threadsBefore = ThreadPool::global().parallelism();
        SimTracer::global().clear();
        SimTracer::global().enable();
    }

    void
    TearDown() override
    {
        SimTracer::global().clear();
        if (!wasEnabled)
            SimTracer::global().disable();
        ThreadPool::setGlobalParallelism(threadsBefore);
    }

    bool wasEnabled = false;
    int threadsBefore = 1;
};

/** Run the standard workload on a fresh 2-SSD service. */
void
runServiceWorkload()
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    QueryService svc(cfg);
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
    for (int q : kQueries)
        svc.submit(tpchQuery(q, kSf));
    svc.drain();
}

TEST_F(TraceTest, ServiceTraceIsByteIdenticalAcrossThreadCounts)
{
    ThreadPool::setGlobalParallelism(1);
    runServiceWorkload();
    std::string serial = SimTracer::global().toJson();
    ASSERT_GT(SimTracer::global().eventCount(), 0u);

    SimTracer::global().clear();
    ThreadPool::setGlobalParallelism(4);
    runServiceWorkload();
    std::string parallel = SimTracer::global().toJson();

    EXPECT_EQ(serial, parallel)
        << "trace JSON must not depend on AQUOMAN_THREADS";
}

TEST_F(TraceTest, DeviceTaskSpansTileDeviceSecondsExactly)
{
    FlashConfig fc;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);
    Catalog catalog;
    database().installInto(catalog, store);

    AquomanConfig cfg;
    cfg.traceLabel = "tile-check";
    AquomanDevice device(catalog, sw, cfg);
    OffloadedQueryResult res = device.runQuery(tpchQuery(6, kSf));
    ASSERT_FALSE(res.stats.tasks.empty());

    SimTracer &tracer = SimTracer::global();
    std::vector<TraceEvent> spans;
    for (const TraceEvent &ev : tracer.events()) {
        SimTracer::TrackInfo ti = tracer.trackInfo(ev.track);
        if (ev.phase == 'X' && ti.process == "aquoman:tile-check"
                && ti.thread == "table-tasks")
            spans.push_back(ev);
    }
    // One span per Table-Task record, in issue order.
    ASSERT_EQ(spans.size(), res.stats.tasks.size());

    // Spans carry exact start/end marks, so adjacent spans must agree
    // bitwise and the union must be exactly [0, deviceSeconds]: the
    // durations sum to deviceSeconds with no floating-point slop.
    EXPECT_EQ(spans.front().tsSec, 0.0);
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].tsSec, spans[i - 1].endSec) << "span " << i;
    EXPECT_EQ(spans.back().endSec, res.stats.deviceSeconds);
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].name, res.stats.tasks[i].what);
}

TEST_F(TraceTest, ServiceTraceCoversDevicesAndTasks)
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    QueryService svc(cfg);
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
    std::vector<service::QueryId> ids;
    for (int q : kQueries)
        ids.push_back(svc.submit(tpchQuery(q, kSf)));
    svc.drain();

    SimTracer &tracer = SimTracer::global();
    std::vector<TraceEvent> events = tracer.events();
    ASSERT_FALSE(events.empty());

    // >= 1 device-scheduler span per device track, and one span per
    // scheduled Table-Task subtask overall.
    std::vector<int> device_spans(cfg.numDevices, 0);
    std::int64_t task_spans = 0;
    for (const TraceEvent &ev : events) {
        if (ev.phase != 'X' || ev.category != "table-task")
            continue;
        SimTracer::TrackInfo ti = tracer.trackInfo(ev.track);
        for (int d = 0; d < cfg.numDevices; ++d)
            if (ti.process == "ssd" + std::to_string(d)) {
                ++device_spans[d];
                ++task_spans;
            }
    }
    service::ServiceStats stats = svc.aggregate();
    std::int64_t tasks_run = 0;
    for (std::int64_t t : stats.deviceTasksRun)
        tasks_run += t;
    for (int d = 0; d < cfg.numDevices; ++d)
        EXPECT_GE(device_spans[d], 1) << "device " << d;
    EXPECT_EQ(task_spans, tasks_run);

    // Every query got a lifecycle track with a terminal Done instant.
    int done_instants = 0;
    for (const TraceEvent &ev : events) {
        SimTracer::TrackInfo ti = tracer.trackInfo(ev.track);
        if (ev.phase == 'i' && ti.process == "queries"
                && ev.name == "Done")
            ++done_instants;
    }
    EXPECT_EQ(done_instants, static_cast<int>(ids.size()));

    // The export is structurally a Chrome trace_event JSON document.
    std::string js = tracer.toJson();
    EXPECT_EQ(js.rfind("{\"traceEvents\": [", 0), 0u) << js.substr(0, 60);
    EXPECT_NE(js.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(js.find("process_name"), std::string::npos);
    EXPECT_NE(js.find("thread_name"), std::string::npos);
    EXPECT_EQ(js.substr(js.size() - 3), "]}\n");
}

} // namespace
} // namespace aquoman::obs
