/** @file
 * Simulation-trace contract tests: a service run under the tracer
 * produces byte-identical Chrome trace_event JSON for every
 * AQUOMAN_THREADS value (all timestamps are modelled seconds); a
 * standalone device run's Table-Task spans tile [0, deviceSeconds]
 * bitwise; and a traced service run carries at least one track per SSD
 * and one span per scheduled Table Task.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "aquoman/device.hh"
#include "common/thread_pool.hh"
#include "obs/trace.hh"
#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman::obs {
namespace {

using service::QueryService;
using service::ServiceConfig;
using tpch::TpchConfig;
using tpch::TpchDatabase;
using tpch::tpchQuery;

constexpr double kSf = 0.01;
const std::vector<int> kQueries{6, 14, 1, 12};

const TpchDatabase &
database()
{
    static TpchDatabase db = [] {
        TpchConfig cfg;
        cfg.scaleFactor = kSf;
        return TpchDatabase::generate(cfg);
    }();
    return db;
}

/** Enables a clean tracer for the test, restores the old state after. */
class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = SimTracer::global().enabled();
        threadsBefore = ThreadPool::global().parallelism();
        SimTracer::global().clear();
        SimTracer::global().enable();
    }

    void
    TearDown() override
    {
        SimTracer::global().clear();
        if (!wasEnabled)
            SimTracer::global().disable();
        ThreadPool::setGlobalParallelism(threadsBefore);
    }

    bool wasEnabled = false;
    int threadsBefore = 1;
};

/** Run the standard workload on a fresh 2-SSD service. */
void
runServiceWorkload()
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    QueryService svc(cfg);
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
    for (int q : kQueries)
        svc.submit(tpchQuery(q, kSf));
    svc.drain();
}

TEST_F(TraceTest, ServiceTraceIsByteIdenticalAcrossThreadCounts)
{
    ThreadPool::setGlobalParallelism(1);
    runServiceWorkload();
    std::string serial = SimTracer::global().toJson();
    ASSERT_GT(SimTracer::global().eventCount(), 0u);

    SimTracer::global().clear();
    ThreadPool::setGlobalParallelism(4);
    runServiceWorkload();
    std::string parallel = SimTracer::global().toJson();

    EXPECT_EQ(serial, parallel)
        << "trace JSON must not depend on AQUOMAN_THREADS";
}

TEST_F(TraceTest, DeviceTaskSpansTileDeviceSecondsExactly)
{
    FlashConfig fc;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);
    Catalog catalog;
    database().installInto(catalog, store);

    AquomanConfig cfg;
    cfg.traceLabel = "tile-check";
    AquomanDevice device(catalog, sw, cfg);
    OffloadedQueryResult res = device.runQuery(tpchQuery(6, kSf));
    ASSERT_FALSE(res.stats.tasks.empty());

    SimTracer &tracer = SimTracer::global();
    std::vector<TraceEvent> spans;
    for (const TraceEvent &ev : tracer.events()) {
        SimTracer::TrackInfo ti = tracer.trackInfo(ev.track);
        if (ev.phase == 'X' && ti.process == "aquoman:tile-check"
                && ti.thread == "table-tasks")
            spans.push_back(ev);
    }
    // One span per Table-Task record, in issue order.
    ASSERT_EQ(spans.size(), res.stats.tasks.size());

    // Spans carry exact start/end marks, so adjacent spans must agree
    // bitwise and the union must be exactly [0, deviceSeconds]: the
    // durations sum to deviceSeconds with no floating-point slop.
    EXPECT_EQ(spans.front().tsSec, 0.0);
    for (std::size_t i = 1; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].tsSec, spans[i - 1].endSec) << "span " << i;
    EXPECT_EQ(spans.back().endSec, res.stats.deviceSeconds);
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_EQ(spans[i].name, res.stats.tasks[i].what);
}

TEST_F(TraceTest, ServiceTraceCoversDevicesAndTasks)
{
    ServiceConfig cfg;
    cfg.numDevices = 2;
    cfg.admissionLimit = 2;
    QueryService svc(cfg);
    const TpchDatabase &db = database();
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());
    std::vector<service::QueryId> ids;
    for (int q : kQueries)
        ids.push_back(svc.submit(tpchQuery(q, kSf)));
    svc.drain();

    SimTracer &tracer = SimTracer::global();
    std::vector<TraceEvent> events = tracer.events();
    ASSERT_FALSE(events.empty());

    // >= 1 device-scheduler span per device track, and one span per
    // scheduled Table-Task subtask overall.
    std::vector<int> device_spans(cfg.numDevices, 0);
    std::int64_t task_spans = 0;
    for (const TraceEvent &ev : events) {
        if (ev.phase != 'X' || ev.category != "table-task")
            continue;
        SimTracer::TrackInfo ti = tracer.trackInfo(ev.track);
        for (int d = 0; d < cfg.numDevices; ++d)
            if (ti.process == "ssd" + std::to_string(d)) {
                ++device_spans[d];
                ++task_spans;
            }
    }
    service::ServiceStats stats = svc.aggregate();
    std::int64_t tasks_run = 0;
    for (std::int64_t t : stats.deviceTasksRun)
        tasks_run += t;
    for (int d = 0; d < cfg.numDevices; ++d)
        EXPECT_GE(device_spans[d], 1) << "device " << d;
    EXPECT_EQ(task_spans, tasks_run);

    // Every query got a lifecycle track with a terminal Done instant.
    int done_instants = 0;
    for (const TraceEvent &ev : events) {
        SimTracer::TrackInfo ti = tracer.trackInfo(ev.track);
        if (ev.phase == 'i' && ti.process == "queries"
                && ev.name == "Done")
            ++done_instants;
    }
    EXPECT_EQ(done_instants, static_cast<int>(ids.size()));

    // The export is structurally a Chrome trace_event JSON document.
    std::string js = tracer.toJson();
    EXPECT_EQ(js.rfind("{\"traceEvents\": [", 0), 0u) << js.substr(0, 60);
    EXPECT_NE(js.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(js.find("process_name"), std::string::npos);
    EXPECT_NE(js.find("thread_name"), std::string::npos);
    EXPECT_EQ(js.substr(js.size() - 3), "]}\n");
}

// ---------------------------------------------------------------------
// Tail-based sampling groups
// ---------------------------------------------------------------------

TEST_F(TraceTest, AmbientGroupStampsEvents)
{
    SimTracer &tracer = SimTracer::global();
    int t = tracer.track("proc", "thread");
    tracer.span(t, "ungrouped", "c", 0.0, 1.0);
    tracer.setAmbientGroup(7);
    tracer.span(t, "grouped", "c", 1.0, 2.0);
    tracer.instant(t, "grouped-i", "c", 1.5);
    tracer.setAmbientGroup(-1);
    tracer.span(t, "ungrouped2", "c", 2.0, 3.0);

    std::vector<TraceEvent> evs = tracer.events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs[0].group, -1);
    EXPECT_EQ(evs[1].group, 7);
    EXPECT_EQ(evs[2].group, 7);
    EXPECT_EQ(evs[3].group, -1);
}

TEST_F(TraceTest, ResolveGroupDropsOrKeeps)
{
    SimTracer &tracer = SimTracer::global();
    int t = tracer.track("proc", "thread");
    for (std::int64_t g : {0, 1, 2}) {
        tracer.setAmbientGroup(g);
        tracer.span(t, "work" + std::to_string(g), "c",
                    static_cast<double>(g), static_cast<double>(g) + 1);
        tracer.instant(t, "mark" + std::to_string(g), "c",
                       static_cast<double>(g));
    }
    tracer.setAmbientGroup(-1);
    tracer.instant(t, "always", "c", 9.0);

    tracer.resolveGroup(0, /*keep=*/true);
    tracer.resolveGroup(1, /*keep=*/false);
    // Group 2 stays unresolved: retained at export.

    EXPECT_EQ(tracer.droppedEvents(), 2u);
    EXPECT_EQ(tracer.eventCount(), 5u);
    std::vector<TraceEvent> evs = tracer.events();
    ASSERT_EQ(evs.size(), 5u);
    for (const TraceEvent &ev : evs)
        EXPECT_NE(ev.group, 1) << ev.name;

    // The exported JSON must not mention the dropped group's events.
    std::string json = tracer.toJson();
    EXPECT_EQ(json.find("work1"), std::string::npos);
    EXPECT_NE(json.find("work0"), std::string::npos);
    EXPECT_NE(json.find("work2"), std::string::npos);
    EXPECT_NE(json.find("always"), std::string::npos);
}

TEST_F(TraceTest, DroppedTrackVanishesFromExport)
{
    SimTracer &tracer = SimTracer::global();
    int kept = tracer.track("queries", "q-kept");
    int dropped = tracer.track("queries", "q-dropped");
    tracer.setAmbientGroup(1);
    tracer.span(kept, "k", "c", 0.0, 1.0);
    tracer.setAmbientGroup(2);
    tracer.span(dropped, "d", "c", 0.0, 1.0);
    tracer.setAmbientGroup(-1);
    tracer.resolveGroup(2, false);

    // A track whose every event was sampled away contributes zero
    // bytes — not even pid/tid metadata.
    std::string json = tracer.toJson();
    EXPECT_EQ(json.find("q-dropped"), std::string::npos) << json;
    EXPECT_NE(json.find("q-kept"), std::string::npos);
}

TEST_F(TraceTest, CompactionSurvivesManyDroppedGroups)
{
    // Drop far more groups than the compaction batch (64) and verify
    // the retained view and accounting stay exact.
    SimTracer &tracer = SimTracer::global();
    int t = tracer.track("proc", "thread");
    const std::int64_t kGroups = 300;
    std::size_t kept_events = 0;
    for (std::int64_t g = 0; g < kGroups; ++g) {
        tracer.setAmbientGroup(g);
        tracer.span(t, "g" + std::to_string(g), "c",
                    static_cast<double>(g), static_cast<double>(g) + 1);
        tracer.setAmbientGroup(-1);
    }
    for (std::int64_t g = 0; g < kGroups; ++g) {
        bool keep = (g % 10 == 0);
        tracer.resolveGroup(g, keep);
        if (keep)
            ++kept_events;
    }
    EXPECT_EQ(tracer.eventCount(), kept_events);
    EXPECT_EQ(tracer.droppedEvents(),
              static_cast<std::size_t>(kGroups) - kept_events);
    for (const TraceEvent &ev : tracer.events())
        EXPECT_EQ(ev.group % 10, 0) << ev.name;

    // Resolving an unknown or already-resolved group is a no-op.
    tracer.resolveGroup(12345, false);
    tracer.resolveGroup(0, false);
    EXPECT_EQ(tracer.eventCount(), kept_events);
}

TEST_F(TraceTest, ClearResetsSamplingState)
{
    SimTracer &tracer = SimTracer::global();
    int t = tracer.track("proc", "thread");
    tracer.setAmbientGroup(3);
    tracer.span(t, "x", "c", 0.0, 1.0);
    tracer.resolveGroup(3, false);
    EXPECT_GT(tracer.droppedEvents(), 0u);
    tracer.clear();
    EXPECT_EQ(tracer.droppedEvents(), 0u);
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.ambientGroup(), -1);
}

} // namespace
} // namespace aquoman::obs
