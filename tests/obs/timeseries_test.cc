/** @file
 * Windowed time-series rollup contracts: samples land in the right
 * fixed-width windows, merge() is order-independent (sharded stores
 * render byte-identical JSON however they are combined), the
 * Prometheus exposition carries `_sum` / `_count` companions for
 * histogram series, and Histogram::merge itself is order-independent
 * under a deterministic fuzz of shardings.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/timeseries.hh"

namespace aquoman::obs {
namespace {

TEST(TimeSeriesStore, WindowIndexing)
{
    TimeSeriesStore ts(0.5);
    EXPECT_EQ(ts.windowIndex(0.0), 0);
    EXPECT_EQ(ts.windowIndex(0.49), 0);
    EXPECT_EQ(ts.windowIndex(0.5), 1);
    EXPECT_EQ(ts.windowIndex(1.74), 3);
    // Negative modelled times clamp to window 0.
    EXPECT_EQ(ts.windowIndex(-2.0), 0);
    EXPECT_DOUBLE_EQ(ts.windowStartSec(3), 1.5);
}

TEST(TimeSeriesStore, CountersAndRanges)
{
    TimeSeriesStore ts(1.0);
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.firstWindow(), 0);
    EXPECT_EQ(ts.lastWindow(), -1);

    ts.add("c", 0.2, 1.0);
    ts.add("c", 0.7, 2.0);
    ts.add("c", 2.5, 4.0);
    EXPECT_FALSE(ts.empty());
    EXPECT_EQ(ts.firstWindow(), 0);
    EXPECT_EQ(ts.lastWindow(), 2);
    EXPECT_DOUBLE_EQ(ts.counterAt("c", 0), 3.0);
    EXPECT_DOUBLE_EQ(ts.counterAt("c", 1), 0.0);
    EXPECT_DOUBLE_EQ(ts.counterAt("c", 2), 4.0);
    EXPECT_DOUBLE_EQ(ts.counterAt("missing", 0), 0.0);
    EXPECT_DOUBLE_EQ(ts.counterInRange("c", 0, 2), 7.0);
    EXPECT_DOUBLE_EQ(ts.counterInRange("c", 1, 2), 4.0);
    EXPECT_DOUBLE_EQ(ts.counterInRange("c", 3, 9), 0.0);
}

TEST(TimeSeriesStore, HistogramWindows)
{
    TimeSeriesStore ts(1.0);
    ts.observe("h", 0.1, 1.0);
    ts.observe("h", 0.9, 3.0);
    ts.observe("h", 1.5, 10.0);
    EXPECT_EQ(ts.histogramAt("h", 0).count(), 2);
    EXPECT_EQ(ts.histogramAt("h", 1).count(), 1);
    EXPECT_EQ(ts.histogramAt("h", 5).count(), 0);
    Histogram merged = ts.histogramInRange("h", 0, 1);
    EXPECT_EQ(merged.count(), 3);
    EXPECT_DOUBLE_EQ(merged.sum(), 14.0);
}

/** Tiny deterministic PRNG so the fuzz never depends on libc. */
struct Lcg
{
    std::uint64_t s;
    explicit Lcg(std::uint64_t seed) : s(seed) {}
    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 33;
    }
    double frac() { return static_cast<double>(next() % 100000) / 1e3; }
    /** Multiples of 1/256 in [1/256, 100]: summation is exact in a
     *  double regardless of association, so sharded partial sums equal
     *  the direct accumulation bit-for-bit. */
    double
    dyadic()
    {
        return static_cast<double>(1 + next() % 25600) / 256.0;
    }
};

TEST(TimeSeriesStore, MergeIsOrderIndependent)
{
    // One reference store fed directly, versus three shards fed
    // round-robin and merged in two different orders.
    Lcg rng(7);
    TimeSeriesStore direct(0.25);
    std::vector<TimeSeriesStore> shards(3, TimeSeriesStore(0.25));
    for (int i = 0; i < 400; ++i) {
        double at = rng.frac();
        double v = rng.dyadic();
        const std::string key = (i % 2) ? "a" : "b";
        direct.add(key, at, v);
        direct.observe("lat", at, v);
        shards[i % 3].add(key, at, v);
        shards[i % 3].observe("lat", at, v);
    }

    TimeSeriesStore fwd(0.25);
    for (const TimeSeriesStore &s : shards)
        fwd.merge(s);
    TimeSeriesStore rev(0.25);
    for (auto it = shards.rbegin(); it != shards.rend(); ++it)
        rev.merge(*it);

    EXPECT_EQ(direct.jsonString(), fwd.jsonString());
    EXPECT_EQ(direct.jsonString(), rev.jsonString());
    EXPECT_EQ(direct.jsonString(), direct.jsonString());
}

TEST(HistogramMerge, OrderIndependenceFuzz)
{
    // 20 rounds: random samples split into random shards, shards merged
    // in forward and reverse order; every aggregate and quantile must
    // equal the directly-built histogram exactly.
    for (std::uint64_t round = 0; round < 20; ++round) {
        Lcg rng(1000 + round);
        int n = 50 + static_cast<int>(rng.next() % 450);
        int num_shards = 1 + static_cast<int>(rng.next() % 7);

        Histogram direct;
        std::vector<Histogram> shards(num_shards);
        for (int i = 0; i < n; ++i) {
            double v = rng.dyadic();
            direct.record(v);
            shards[rng.next() % num_shards].record(v);
        }

        Histogram fwd;
        for (const Histogram &s : shards)
            fwd.merge(s);
        Histogram rev;
        for (auto it = shards.rbegin(); it != shards.rend(); ++it)
            rev.merge(*it);

        for (const Histogram *m : {&fwd, &rev}) {
            EXPECT_EQ(m->count(), direct.count()) << "round " << round;
            EXPECT_DOUBLE_EQ(m->sum(), direct.sum())
                << "round " << round;
            EXPECT_DOUBLE_EQ(m->min(), direct.min())
                << "round " << round;
            EXPECT_DOUBLE_EQ(m->max(), direct.max())
                << "round " << round;
            for (double q : {0.0, 0.5, 0.9, 0.99, 1.0})
                EXPECT_DOUBLE_EQ(m->quantile(q), direct.quantile(q))
                    << "round " << round << " q " << q;
        }

        std::ostringstream a, b;
        direct.toJson(a);
        fwd.toJson(b);
        EXPECT_EQ(a.str(), b.str()) << "round " << round;
    }
}

TEST(TimeSeriesStore, PrometheusHistogramCompanions)
{
    TimeSeriesStore ts(1.0);
    std::string key =
        labeledMetric("slo_latency_seconds", {{"tenant", "t0"}});
    ts.observe(key, 0.5, 0.1);
    ts.observe(key, 0.6, 0.3);
    ts.add(labeledMetric("slo_completed", {{"tenant", "t0"}}), 0.5,
           2.0);

    std::ostringstream os;
    ts.toPrometheus(os);
    std::string text = os.str();

    // Histogram series expose quantiles plus _sum / _count companions
    // carrying the label block; counters are plain samples.
    EXPECT_NE(text.find("slo_latency_seconds_sum{tenant=\"t0\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("slo_latency_seconds_count{tenant=\"t0\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos)
        << text;
    EXPECT_NE(text.find("slo_completed{tenant=\"t0\"}"),
              std::string::npos)
        << text;
    // One _count sample must carry the window's observation count.
    EXPECT_NE(text.find("slo_latency_seconds_count{tenant=\"t0\"} 2"),
              std::string::npos)
        << text;
}

TEST(TimeSeriesStore, JsonShapeAndClear)
{
    TimeSeriesStore ts(2.0);
    ts.add("c", 1.0, 5.0);
    ts.observe("h", 3.0, 1.5);
    std::string j = ts.jsonString();
    EXPECT_NE(j.find("\"window_seconds\":2"), std::string::npos) << j;
    EXPECT_NE(j.find("\"counters\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"histograms\""), std::string::npos) << j;
    EXPECT_NE(j.find("\"start_seconds\":2"), std::string::npos) << j;
    ts.clear();
    EXPECT_TRUE(ts.empty());
    EXPECT_EQ(ts.lastWindow(), -1);
}

} // namespace
} // namespace aquoman::obs
