/**
 * @file
 * Tests for the query profiler: the cost-attribution tree's exact-sum
 * invariants, the determinism contract (profile JSON byte-identical
 * across thread counts and batch modes), the SuspendReason taxonomy,
 * the flight recorder ring, and the debug ledger audits.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "aquoman/device.hh"
#include "aquoman/query_profile.hh"
#include "common/batch_mode.hh"
#include "common/thread_pool.hh"
#include "engine/host_model.hh"
#include "obs/profile.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman {
namespace {

constexpr double kSf = 0.01;

const tpch::TpchDatabase &
database()
{
    static tpch::TpchDatabase db =
        tpch::TpchDatabase::generate(tpch::TpchConfig{kSf, 19920101});
    return db;
}

struct RunArtifacts
{
    OffloadedQueryResult result;
    obs::QueryProfile profile;
};

/** Run query @p q on one device and build its profile. */
RunArtifacts
runQuery(int q)
{
    FlashConfig fc;
    fc.capacityBytes = 8ll << 30;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);
    Catalog catalog;
    database().installInto(catalog, store);

    AquomanDevice dev(catalog, sw, AquomanConfig{});
    RunArtifacts out{dev.runQuery(tpch::tpchQuery(q, kSf)), {}};

    HostModel host(HostConfig::large());
    const AquomanRunStats &st = out.result.stats;
    HostRunEstimate est = host.estimate(st.hostResidual);
    HostPhaseProfile hp;
    hp.hostSeconds = est.runtime;
    hp.dmaSeconds = static_cast<double>(st.dmaBytes)
        / host.cfg().storageReadBandwidth;
    hp.dmaBytes = st.dmaBytes;
    out.profile = buildQueryProfile("q" + std::to_string(q),
                                    out.result.compilation, st, hp);
    return out;
}

void
forEachNode(const obs::ProfileNode &n,
            const std::function<void(const obs::ProfileNode &)> &fn)
{
    fn(n);
    for (const obs::ProfileNode &c : n.children)
        forEachNode(c, fn);
}

// ---------------------------------------------------------------------
// Exact-sum invariants
// ---------------------------------------------------------------------

TEST(ProfileSums, StageSecondsSumExactlyToNodeSeconds)
{
    for (int q : {1, 6, 13}) {
        RunArtifacts run = runQuery(q);
        forEachNode(run.profile.root, [&](const obs::ProfileNode &n) {
            double sum = 0.0;
            for (int i = 0; i < obs::kNumPipeStages; ++i)
                sum += n.stages.sec[i];
            EXPECT_EQ(sum, n.selfSeconds())
                << "q" << q << " node " << n.name;
        });
    }
}

TEST(ProfileSums, TreeTotalReproducesDevicePlusHostSeconds)
{
    for (int q : {1, 6, 13}) {
        RunArtifacts run = runQuery(q);
        const AquomanRunStats &st = run.result.stats;
        HostModel host(HostConfig::large());
        HostRunEstimate est = host.estimate(st.hostResidual);
        double host_phase = est.runtime
            + static_cast<double>(st.dmaBytes)
                / host.cfg().storageReadBandwidth;
        // Pre-order visit order matches chronological accrual order,
        // so the sum reproduces the ledger totals bitwise.
        EXPECT_EQ(run.profile.totalSeconds(),
                  st.deviceSeconds + host_phase)
            << "q" << q;
    }
}

TEST(ProfileSums, TaskSecondsPartitionDeviceSeconds)
{
    RunArtifacts run = runQuery(1);
    const AquomanRunStats &st = run.result.stats;
    ASSERT_FALSE(st.tasks.empty());
    double acc = 0.0;
    std::int64_t bytes = 0;
    for (const TableTaskRecord &t : st.tasks) {
        acc += t.seconds;
        bytes += t.flashBytes;
    }
    EXPECT_EQ(acc, st.deviceSeconds);
    EXPECT_EQ(bytes, st.deviceFlashBytes);
}

// ---------------------------------------------------------------------
// Determinism: profile JSON byte-identical across THREADS x BATCH
// ---------------------------------------------------------------------

class ProfileDeterminism : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        ThreadPool::setGlobalParallelism(
            ThreadPool::configuredParallelism());
        // Restore whatever AQUOMAN_BATCH asked for, even on failure.
        const char *env = std::getenv("AQUOMAN_BATCH");
        setBatchExecutionEnabled(env == nullptr
                                 || std::string_view(env) != "0");
    }
};

TEST_F(ProfileDeterminism, JsonIdenticalAcrossThreadsAndBatchMode)
{
    for (int q : {1, 6, 13}) {
        std::vector<std::string> renders;
        for (int threads : {1, 4}) {
            for (bool batch : {false, true}) {
                ThreadPool::setGlobalParallelism(threads);
                setBatchExecutionEnabled(batch);
                renders.push_back(runQuery(q).profile.jsonString());
            }
        }
        for (std::size_t i = 1; i < renders.size(); ++i)
            EXPECT_EQ(renders[0], renders[i])
                << "q" << q << " variant " << i;
    }
}

// ---------------------------------------------------------------------
// SuspendReason taxonomy
// ---------------------------------------------------------------------

TEST(SuspendReasons, FullyOffloadedQueryHasNone)
{
    RunArtifacts run = runQuery(6);
    EXPECT_EQ(run.profile.suspend, obs::SuspendReason::None);
    EXPECT_EQ(run.profile.offloadClass, "full");
}

TEST(SuspendReasons, RegexOverWideStringHeapClassifies)
{
    // Q13 filters orders on a regex over o_comment: too many distinct
    // strings for the accelerator cache, so the compiler forces the
    // query to the host with a structured reason.
    RunArtifacts run = runQuery(13);
    EXPECT_EQ(run.profile.suspend, obs::SuspendReason::StringHeapRegex);
    EXPECT_EQ(run.result.stats.tasks.empty(),
              run.profile.offloadClass == "none");
}

TEST(SuspendReasons, NamesAreStable)
{
    EXPECT_STREQ(obs::suspendReasonName(obs::SuspendReason::None),
                 "none");
    EXPECT_STREQ(
        obs::suspendReasonName(obs::SuspendReason::MidPlanGroupBy),
        "mid_plan_group_by");
    EXPECT_STREQ(
        obs::suspendReasonName(obs::SuspendReason::StringHeapRegex),
        "string_heap_regex");
    EXPECT_STREQ(obs::suspendReasonName(obs::SuspendReason::GroupSpill),
                 "group_spill");
    EXPECT_STREQ(
        obs::suspendReasonName(obs::SuspendReason::DramOverflow),
        "dram_overflow");
    EXPECT_STREQ(
        obs::suspendReasonName(obs::SuspendReason::AdmissionDram),
        "admission_dram");
}

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

TEST(ProfileRender, TextTreeCarriesHeaderAndBottlenecks)
{
    RunArtifacts run = runQuery(1);
    std::string text = run.profile.textString();
    EXPECT_NE(text.find("EXPLAIN ANALYZE q1"), std::string::npos);
    EXPECT_NE(text.find("class=full"), std::string::npos);
    EXPECT_NE(text.find("[table-task]"), std::string::npos);
    // q1 is flash-bound on raw layouts and decode-bound on encoded
    // ones; either way the bottleneck column names a pipeline stage.
    EXPECT_TRUE(text.find("flash_read") != std::string::npos
                || text.find("decode") != std::string::npos);
}

TEST(ProfileRender, JsonStageSecondsUseStableKeys)
{
    RunArtifacts run = runQuery(6);
    std::string json = run.profile.jsonString();
    EXPECT_NE(json.find("\"query\":\"q6\""), std::string::npos);
    EXPECT_NE(json.find("\"stage_seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"flash_read\""), std::string::npos);
    EXPECT_NE(json.find("\"offload_class\":\"full\""),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Profile collection gate
// ---------------------------------------------------------------------

TEST(ProfileGate, DisablingCollectionSuppressesHostOps)
{
    bool was = obs::profileCollectionEnabled();
    obs::setProfileCollection(false);
    RunArtifacts run = runQuery(13); // host-heavy query
    obs::setProfileCollection(was);
    EXPECT_TRUE(run.result.stats.hostOps.children.empty());

    RunArtifacts collected = runQuery(13);
    EXPECT_FALSE(collected.result.stats.hostOps.children.empty());
}

// ---------------------------------------------------------------------
// Flight recorder ring
// ---------------------------------------------------------------------

TEST(FlightRecorder, RingKeepsNewestAndCountsDrops)
{
    obs::FlightRecorder fr(4);
    for (int i = 0; i < 10; ++i)
        fr.record(static_cast<double>(i), "tick",
                  "s" + std::to_string(i), "");
    EXPECT_EQ(fr.size(), 4u);
    EXPECT_EQ(fr.recorded(), 10);
    EXPECT_EQ(fr.dropped(), 6);
    std::vector<obs::FlightEvent> events = fr.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events.front().subject, "s6"); // oldest retained
    EXPECT_EQ(events.back().subject, "s9");  // newest
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
}

TEST(FlightRecorder, OverwriteAccountingAcrossCapacities)
{
    // The ring's size / recorded / dropped ledger must stay exact at
    // the degenerate capacity 1, the default 256, and an oversized
    // 4096 that never wraps.
    for (std::size_t cap : {std::size_t{1}, std::size_t{256},
                            std::size_t{4096}}) {
        obs::FlightRecorder fr(cap);
        EXPECT_EQ(fr.capacityEvents(), cap);
        const int total = 1000;
        for (int i = 0; i < total; ++i)
            fr.record(static_cast<double>(i), "tick",
                      "s" + std::to_string(i), "");
        std::size_t expect_size =
            std::min(cap, static_cast<std::size_t>(total));
        EXPECT_EQ(fr.size(), expect_size) << "cap " << cap;
        EXPECT_EQ(fr.recorded(), total) << "cap " << cap;
        EXPECT_EQ(fr.dropped(),
                  static_cast<std::int64_t>(total - expect_size))
            << "cap " << cap;
        std::vector<obs::FlightEvent> events = fr.snapshot();
        ASSERT_EQ(events.size(), expect_size) << "cap " << cap;
        // Oldest retained is exactly the first not-overwritten event,
        // and sequence numbers are contiguous through the wrap.
        EXPECT_EQ(events.front().seq,
                  static_cast<std::int64_t>(total - expect_size))
            << "cap " << cap;
        for (std::size_t i = 1; i < events.size(); ++i)
            EXPECT_EQ(events[i].seq, events[i - 1].seq + 1)
                << "cap " << cap;
    }
}

TEST(FlightRecorder, CapacityFromEnv)
{
    // Helper for restoring whatever AQUOMAN_FLIGHT_EVENTS held.
    const char *old = std::getenv("AQUOMAN_FLIGHT_EVENTS");
    std::string saved = old ? old : "";

    unsetenv("AQUOMAN_FLIGHT_EVENTS");
    EXPECT_EQ(obs::flightRecorderCapacityFromEnv(256), 256u);
    EXPECT_EQ(obs::flightRecorderCapacityFromEnv(32), 32u);

    setenv("AQUOMAN_FLIGHT_EVENTS", "4096", 1);
    EXPECT_EQ(obs::flightRecorderCapacityFromEnv(256), 4096u);
    setenv("AQUOMAN_FLIGHT_EVENTS", "1", 1);
    EXPECT_EQ(obs::flightRecorderCapacityFromEnv(256), 1u);

    // Garbage, trailing junk, zero and negatives fall back.
    for (const char *bad : {"abc", "12x", "0", "-5", ""}) {
        setenv("AQUOMAN_FLIGHT_EVENTS", bad, 1);
        EXPECT_EQ(obs::flightRecorderCapacityFromEnv(256), 256u)
            << "value '" << bad << "'";
    }

    if (old)
        setenv("AQUOMAN_FLIGHT_EVENTS", saved.c_str(), 1);
    else
        unsetenv("AQUOMAN_FLIGHT_EVENTS");
}

TEST(FlightRecorder, RenderMentionsWhyAndOverwrites)
{
    obs::FlightRecorder fr(2);
    fr.record(0.5, "submit", "q1#0", "");
    fr.record(1.5, "suspend", "q1#0", "dram");
    fr.record(2.5, "done", "q1#0", "");
    std::ostringstream os;
    fr.render(os, "unit test dump");
    std::string text = os.str();
    EXPECT_NE(text.find("unit test dump"), std::string::npos);
    EXPECT_NE(text.find("suspend"), std::string::npos);
    EXPECT_NE(text.find("overwritten"), std::string::npos);
    EXPECT_EQ(text.find("submit"), std::string::npos); // overwritten
}

// ---------------------------------------------------------------------
// Ledger audits
// ---------------------------------------------------------------------

TEST(LedgerAudit, PassesOnConsistentLedgersAndCatchesDrift)
{
    obs::LedgerAudit audit;
    audit.taskSeconds = {0.25, 0.5, 0.125};
    audit.deviceSeconds = 0.25 + 0.5 + 0.125;
    audit.taskFlashBytes = {100, 200};
    audit.deviceFlashBytes = 300;
    std::string err;
    EXPECT_TRUE(obs::auditLedgers(audit, &err)) << err;

    audit.deviceFlashBytes = 301;
    EXPECT_FALSE(obs::auditLedgers(audit, &err));
    EXPECT_NE(err.find("flash"), std::string::npos);

    audit.deviceFlashBytes = 300;
    audit.deviceSeconds += 1e-9;
    EXPECT_FALSE(obs::auditLedgers(audit, &err));
}

TEST(LedgerAudit, PortPartitionChecksExpectedTotal)
{
    obs::LedgerAudit audit;
    audit.portBytes = {4096, 8192};
    audit.expectedPortTotal = 4096 + 8192;
    std::string err;
    EXPECT_TRUE(obs::auditLedgers(audit, &err)) << err;

    audit.expectedPortTotal += 1;
    EXPECT_FALSE(obs::auditLedgers(audit, &err));
}

TEST(LedgerAudit, RealRunPassesAudit)
{
    RunArtifacts run = runQuery(1);
    const AquomanRunStats &st = run.result.stats;
    obs::LedgerAudit audit;
    for (const TableTaskRecord &t : st.tasks) {
        audit.taskSeconds.push_back(t.seconds);
        audit.taskFlashBytes.push_back(t.flashBytes);
    }
    audit.deviceSeconds = st.deviceSeconds;
    audit.deviceFlashBytes = st.deviceFlashBytes;
    std::string err;
    EXPECT_TRUE(obs::auditLedgers(audit, &err)) << err;
}

} // namespace
} // namespace aquoman
