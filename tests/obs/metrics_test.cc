/** @file
 * Unit tests of the observability metrics layer: log-bucketed histogram
 * accuracy and order-independence, registry counters/gauges/histograms,
 * the JSON and Prometheus expositions, and the enabled() gating
 * contract instrumentation sites rely on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hh"

namespace aquoman::obs {
namespace {

std::string
histJson(const Histogram &h)
{
    std::ostringstream os;
    h.toJson(os);
    return os.str();
}

TEST(HistogramTest, EmptyHistogramIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, BasicMoments)
{
    Histogram h;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        h.record(v);
    EXPECT_EQ(h.count(), 4);
    EXPECT_EQ(h.sum(), 10.0);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 4.0);
    EXPECT_EQ(h.mean(), 2.5);
}

TEST(HistogramTest, SingleSampleQuantilesAreThatSample)
{
    Histogram h;
    h.record(0.125);
    // Quantiles clamp to [min, max], so one sample pins every quantile.
    EXPECT_EQ(h.quantile(0.0), 0.125);
    EXPECT_EQ(h.quantile(0.5), 0.125);
    EXPECT_EQ(h.quantile(0.99), 0.125);
    EXPECT_EQ(h.quantile(1.0), 0.125);
}

TEST(HistogramTest, QuantileRelativeErrorBounded)
{
    // 1..1000: p50 must land within one sub-bucket (1/16 relative) of
    // the exact order statistic, across three orders of magnitude.
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.record(static_cast<double>(i));
    for (double q : {0.5, 0.9, 0.99}) {
        double exact = q * 1000.0;
        double approx = h.quantile(q);
        EXPECT_GE(approx, exact * (1.0 - 1.0 / Histogram::kSubBuckets))
            << "q=" << q;
        EXPECT_LE(approx, exact * (1.0 + 2.0 / Histogram::kSubBuckets))
            << "q=" << q;
    }
    EXPECT_GE(h.quantile(0.5), h.quantile(0.25));
    EXPECT_GE(h.quantile(0.99), h.quantile(0.9));
}

TEST(HistogramTest, ZeroAndNegativeSamplesShareTheZeroBucket)
{
    Histogram h;
    h.record(0.0);
    h.record(-3.0);
    h.record(8.0);
    EXPECT_EQ(h.count(), 3);
    EXPECT_EQ(h.min(), -3.0);
    EXPECT_EQ(h.max(), 8.0);
    // Two of three samples are <= 0, so the median is the zero bucket,
    // clamped to the observed minimum.
    EXPECT_LE(h.quantile(0.5), 0.0);
}

TEST(HistogramTest, MergeIsOrderIndependent)
{
    std::vector<double> a{0.001, 0.5, 12.0, 3e6};
    std::vector<double> b{7.0, 7.0, 0.25, 1e-9, 42.0};
    Histogram fwd, rev, merged_ab, merged_ba, part_a, part_b;
    for (double v : a)
        fwd.record(v);
    for (double v : b)
        fwd.record(v);
    for (auto it = b.rbegin(); it != b.rend(); ++it)
        rev.record(*it);
    for (auto it = a.rbegin(); it != a.rend(); ++it)
        rev.record(*it);
    for (double v : a)
        part_a.record(v);
    for (double v : b)
        part_b.record(v);
    merged_ab.merge(part_a);
    merged_ab.merge(part_b);
    merged_ba.merge(part_b);
    merged_ba.merge(part_a);
    EXPECT_EQ(histJson(fwd), histJson(rev));
    EXPECT_EQ(histJson(fwd), histJson(merged_ab));
    EXPECT_EQ(histJson(fwd), histJson(merged_ba));
}

TEST(HistogramTest, JsonContainsAllFields)
{
    Histogram h;
    h.record(2.0);
    h.record(4.0);
    std::string js = histJson(h);
    for (const char *key :
         {"\"count\"", "\"sum\"", "\"min\"", "\"max\"", "\"mean\"",
          "\"p50\"", "\"p90\"", "\"p99\""})
        EXPECT_NE(js.find(key), std::string::npos) << js;
    EXPECT_NE(js.find("\"count\": 2"), std::string::npos) << js;
}

class MetricsRegistryTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        wasEnabled = MetricsRegistry::global().enabled();
        MetricsRegistry::global().clear();
        MetricsRegistry::global().setEnabled(true);
    }

    void
    TearDown() override
    {
        MetricsRegistry::global().clear();
        MetricsRegistry::global().setEnabled(wasEnabled);
    }

    bool wasEnabled = false;
};

TEST_F(MetricsRegistryTest, CountersAccumulateAndGaugesOverwrite)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.add("svc.bytes", 10.0);
    reg.add("svc.bytes", 32.0);
    reg.set("svc.depth", 3.0);
    reg.set("svc.depth", 7.0);
    EXPECT_EQ(reg.counter("svc.bytes"), 42.0);
    EXPECT_EQ(reg.gauge("svc.depth"), 7.0);
    EXPECT_EQ(reg.counter("absent"), 0.0);
    EXPECT_EQ(reg.gauge("absent"), 0.0);
}

TEST_F(MetricsRegistryTest, ObserveFeedsNamedHistogram)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.observe("svc.wait", 1.0);
    reg.observe("svc.wait", 3.0);
    Histogram h = reg.histogram("svc.wait");
    EXPECT_EQ(h.count(), 2);
    EXPECT_EQ(h.sum(), 4.0);
    EXPECT_EQ(reg.histogram("absent").count(), 0);
}

TEST_F(MetricsRegistryTest, JsonExpositionIsSortedAndComplete)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.add("zeta", 1.0);
    reg.add("alpha", 2.0);
    reg.set("mid", 5.0);
    reg.observe("lat", 0.25);
    std::ostringstream os;
    reg.toJson(os);
    std::string js = os.str();
    EXPECT_NE(js.find("\"counters\""), std::string::npos) << js;
    EXPECT_NE(js.find("\"gauges\""), std::string::npos) << js;
    EXPECT_NE(js.find("\"histograms\""), std::string::npos) << js;
    // std::map iteration: "alpha" precedes "zeta" in the output.
    EXPECT_LT(js.find("\"alpha\""), js.find("\"zeta\"")) << js;
}

TEST_F(MetricsRegistryTest, PrometheusExpositionSanitisesNames)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.add("flash.ssd0.bytes_read", 4096.0);
    reg.observe("service.query latency", 0.5);
    std::ostringstream os;
    reg.toPrometheus(os);
    std::string text = os.str();
    EXPECT_NE(text.find("flash_ssd0_bytes_read 4096"), std::string::npos)
        << text;
    EXPECT_NE(text.find("service_query_latency_count 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos) << text;
    // Dotted metric names must not survive sanitisation.
    EXPECT_EQ(text.find("flash.ssd0"), std::string::npos) << text;
}

TEST_F(MetricsRegistryTest, PrometheusEscapesHostileLabelValues)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    // A label value carrying every character the exposition format
    // must escape: backslash, double quote, newline.
    std::string hostile = "a\\b\"c\nd";
    reg.set(labeledMetric("service.device_utilization",
                          {{"device", hostile}}),
            0.5);
    std::ostringstream os;
    reg.toPrometheus(os);
    std::string text = os.str();
    EXPECT_NE(text.find("service_device_utilization{device="
                        "\"a\\\\b\\\"c\\nd\"} 0.5"),
              std::string::npos)
        << text;
    // The raw newline must never reach the exposition: every line is
    // either a comment or "name{labels} value".
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
}

TEST_F(MetricsRegistryTest, PrometheusRejectsInvalidMetricNames)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    // Sanitises to "123_bad": leading digit, not a valid metric name.
    reg.add("123 bad", 1.0);
    // Sanitises to the empty string.
    reg.add("...", 2.0);
    reg.add("fine.name", 3.0);
    std::ostringstream os;
    reg.toPrometheus(os);
    std::string text = os.str();
    EXPECT_EQ(text.find("123_bad"), std::string::npos) << text;
    EXPECT_NE(text.find("fine_name 3"), std::string::npos) << text;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        char c = line[0];
        EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                    || c == '_' || c == ':')
            << line;
    }
}

TEST_F(MetricsRegistryTest, LabeledHistogramMergesQuantileLabel)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.observe(labeledMetric("svc.latency", {{"device", "ssd0"}}),
                0.25);
    std::ostringstream os;
    reg.toPrometheus(os);
    std::string text = os.str();
    EXPECT_NE(text.find("svc_latency{device=\"ssd0\","
                        "quantile=\"0.5\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("svc_latency_count{device=\"ssd0\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("svc_latency_sum{device=\"ssd0\"} 0.25"),
              std::string::npos)
        << text;
}

TEST(LabeledMetricTest, BuildsEscapedKey)
{
    EXPECT_EQ(labeledMetric("m", {{"a", "x"}, {"b", "y\"z"}}),
              "m{a=\"x\",b=\"y\\\"z\"}");
    EXPECT_EQ(promLabelEscape("plain"), "plain");
    EXPECT_EQ(promLabelEscape("a\nb"), "a\\nb");
    EXPECT_EQ(promLabelEscape("a\\b"), "a\\\\b");
}

TEST_F(MetricsRegistryTest, ClearDropsValuesButKeepsEnabled)
{
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.add("c", 1.0);
    reg.set("g", 2.0);
    reg.observe("h", 3.0);
    reg.clear();
    EXPECT_TRUE(reg.enabled());
    EXPECT_EQ(reg.counter("c"), 0.0);
    EXPECT_EQ(reg.gauge("g"), 0.0);
    EXPECT_EQ(reg.histogram("h").count(), 0);
}

TEST_F(MetricsRegistryTest, EnabledGateIsAdvisoryForCallSites)
{
    // The contract is that *call sites* check enabled() before paying
    // for name construction; the registry itself stays functional
    // either way so tests can populate it directly.
    MetricsRegistry &reg = MetricsRegistry::global();
    reg.setEnabled(false);
    EXPECT_FALSE(reg.enabled());
    reg.add("still.works", 1.0);
    EXPECT_EQ(reg.counter("still.works"), 1.0);
    reg.setEnabled(true);
    EXPECT_TRUE(reg.enabled());
}

} // namespace
} // namespace aquoman::obs
