/** @file Unit tests for the NAND flash device model. */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "flash/controller_switch.hh"
#include "flash/flash_device.hh"

namespace aquoman {
namespace {

FlashConfig
smallConfig()
{
    FlashConfig cfg;
    cfg.capacityBytes = 16 << 20; // 16MB device for tests
    return cfg;
}

TEST(FlashDeviceTest, WriteReadRoundTrip)
{
    FlashDevice dev(smallConfig());
    FlashExtent ext = dev.allocate(100000);
    std::vector<std::uint8_t> data(100000);
    std::iota(data.begin(), data.end(), 0);
    dev.write(ext, 0, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    dev.read(ext, 0, back.data(), back.size());
    EXPECT_EQ(data, back);
}

TEST(FlashDeviceTest, UnalignedOffsetsCrossPages)
{
    FlashDevice dev(smallConfig());
    FlashExtent ext = dev.allocate(3 * 8192);
    std::vector<std::uint8_t> data(10000, 0xab);
    dev.write(ext, 5000, data.data(), data.size()); // spans two pages
    std::vector<std::uint8_t> back(10000);
    dev.read(ext, 5000, back.data(), back.size());
    EXPECT_EQ(back, data);
    // Data before the write reads back as erased zeroes.
    std::uint8_t head[16];
    dev.read(ext, 0, head, 16);
    for (auto b : head)
        EXPECT_EQ(b, 0);
}

TEST(FlashDeviceTest, TrafficCountersAccumulate)
{
    FlashDevice dev(smallConfig());
    FlashExtent ext = dev.allocate(8192 * 4);
    std::vector<std::uint8_t> data(8192 * 4, 1);
    dev.write(ext, 0, data.data(), data.size());
    dev.read(ext, 0, data.data(), 8192);
    dev.read(ext, 0, data.data(), 8192);
    EXPECT_EQ(dev.stats().get("flash.bytesWritten"), 8192 * 4);
    EXPECT_EQ(dev.stats().get("flash.bytesRead"), 8192 * 2);
    EXPECT_EQ(dev.stats().get("flash.pagesRead"), 2);
}

TEST(FlashDeviceTest, CapacityEnforced)
{
    FlashConfig cfg = smallConfig();
    FlashDevice dev(cfg);
    dev.allocate(cfg.capacityBytes / 2);
    EXPECT_THROW(dev.allocate(cfg.capacityBytes), FatalError);
}

TEST(FlashDeviceTest, FullDeviceErrorNamesDeviceAndCapacity)
{
    FlashConfig cfg = smallConfig();
    cfg.name = "ssd3";
    FlashDevice dev(cfg);
    dev.allocate(cfg.capacityBytes - 4 * cfg.pageBytes);
    try {
        dev.allocate(cfg.capacityBytes);
        FAIL() << "allocate past capacity must throw";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        // The diagnostic names the device and quantifies the failure:
        // requested bytes and remaining capacity.
        EXPECT_NE(msg.find("'ssd3'"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(cfg.capacityBytes)),
                  std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(4 * cfg.pageBytes)),
                  std::string::npos) << msg;
    }
}

TEST(FlashDeviceTest, ExtentsDoNotOverlap)
{
    FlashDevice dev(smallConfig());
    FlashExtent a = dev.allocate(8192);
    FlashExtent b = dev.allocate(8192);
    std::uint8_t va = 0x11, vb = 0x22;
    dev.write(a, 0, &va, 1);
    dev.write(b, 0, &vb, 1);
    std::uint8_t ra, rb;
    dev.read(a, 0, &ra, 1);
    dev.read(b, 0, &rb, 1);
    EXPECT_EQ(ra, 0x11);
    EXPECT_EQ(rb, 0x22);
    EXPECT_NE(a.firstPage, b.firstPage);
}

TEST(FlashConfigTest, SequentialTimingModel)
{
    FlashConfig cfg;
    // Streaming 2.4GB takes ~1s at 2.4GB/s.
    EXPECT_NEAR(cfg.sequentialReadTime(2'400'000'000ll), 1.0, 0.01);
    EXPECT_EQ(cfg.sequentialReadTime(0), 0.0);
    // Writes are slower (800MB/s).
    EXPECT_NEAR(cfg.sequentialWriteTime(800'000'000ll), 1.0, 0.01);
}

TEST(ControllerSwitchTest, PerPortAccounting)
{
    FlashDevice dev(smallConfig());
    ControllerSwitch sw(dev);
    FlashExtent ext = dev.allocate(8192);
    std::uint8_t buf[128] = {};
    sw.write(FlashPort::Host, ext, 0, buf, 128);
    sw.read(FlashPort::Aquoman, ext, 0, buf, 64);
    sw.read(FlashPort::Host, ext, 0, buf, 32);
    EXPECT_EQ(sw.stats().get("host.bytesWritten"), 128);
    EXPECT_EQ(sw.stats().get("aquoman.bytesRead"), 64);
    EXPECT_EQ(sw.stats().get("host.bytesRead"), 32);
}

TEST(ControllerSwitchTest, FairArbitrationHalvesBandwidth)
{
    FlashDevice dev(smallConfig());
    ControllerSwitch sw(dev);
    EXPECT_DOUBLE_EQ(sw.effectiveReadBandwidth(false),
                     dev.cfg().readBandwidth);
    EXPECT_DOUBLE_EQ(sw.effectiveReadBandwidth(true),
                     dev.cfg().readBandwidth / 2);
}

} // namespace
} // namespace aquoman
