/** @file
 * ControllerSwitch under genuinely concurrent host + AQUOMAN traffic:
 * many threads hammer both ports (real reads/writes and modelled
 * account* traffic) and the per-port byte ledgers must come out exact,
 * with contention-adjusted bandwidth unchanged by the interleaving.
 * Run under -DAQUOMAN_SANITIZE=thread in CI.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "flash/controller_switch.hh"
#include "flash/flash_device.hh"

namespace aquoman {
namespace {

FlashConfig
smallConfig()
{
    FlashConfig cfg;
    cfg.name = "switch-test";
    cfg.capacityBytes = 16 << 20;
    return cfg;
}

TEST(ControllerSwitchConcurrencyTest, InterleavedPortTrafficIsExact)
{
    FlashDevice dev(smallConfig());
    ControllerSwitch sw(dev);
    FlashExtent ext = dev.allocate(1 << 20);

    constexpr int kThreadsPerPort = 4;
    constexpr int kOpsPerThread = 500;
    constexpr std::int64_t kRealBytes = 512;
    constexpr std::int64_t kModelBytes = 8192;

    auto hammer = [&](FlashPort port, std::int64_t offset) {
        std::vector<std::uint8_t> buf(kRealBytes,
                                      port == FlashPort::Host ? 1 : 2);
        for (int i = 0; i < kOpsPerThread; ++i) {
            sw.write(port, ext, offset, buf.data(), kRealBytes);
            sw.read(port, ext, offset, buf.data(), kRealBytes);
            sw.accountRead(port, kModelBytes);
            sw.accountWrite(port, kModelBytes);
        }
    };

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreadsPerPort; ++t) {
        // Disjoint extent regions per thread: the interleaving under
        // test is in the switch's ledgers, not the page payloads.
        threads.emplace_back(hammer, FlashPort::Host,
                             t * 2 * kRealBytes);
        threads.emplace_back(hammer, FlashPort::Aquoman,
                             (t * 2 + 1) * kRealBytes);
    }
    for (auto &th : threads)
        th.join();

    const std::int64_t per_port =
        kThreadsPerPort * kOpsPerThread * (kRealBytes + kModelBytes);
    EXPECT_EQ(sw.bytesRead(FlashPort::Host), per_port);
    EXPECT_EQ(sw.bytesRead(FlashPort::Aquoman), per_port);
    EXPECT_EQ(sw.bytesWritten(FlashPort::Host), per_port);
    EXPECT_EQ(sw.bytesWritten(FlashPort::Aquoman), per_port);

    // Contention model is state-free and exact under concurrency.
    EXPECT_DOUBLE_EQ(sw.effectiveReadBandwidth(false),
                     dev.cfg().readBandwidth);
    EXPECT_DOUBLE_EQ(sw.effectiveReadBandwidth(true),
                     dev.cfg().readBandwidth / 2.0);

    // The device underneath saw every real byte exactly once.
    const std::int64_t real_total =
        2 * kThreadsPerPort * kOpsPerThread * kRealBytes;
    EXPECT_EQ(dev.stats().get("flash.bytesRead"),
              static_cast<double>(real_total));
    EXPECT_EQ(dev.stats().get("flash.bytesWritten"),
              static_cast<double>(real_total));
}

} // namespace
} // namespace aquoman
