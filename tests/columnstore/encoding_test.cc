/** @file
 * Property tests for the persisted column codecs (Raw/RLE/Dict/FOR):
 * every value shape must round-trip bit-exactly through encode ->
 * flash persist -> decode, the per-page zone maps must agree with
 * brute force and never prune a matching page, code-domain predicate
 * evaluation must match decoded evaluation, and compressed device
 * runs must stay bit-deterministic across thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "aquoman/device.hh"
#include "columnstore/encoding.hh"
#include "common/compress_mode.hh"
#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "flash/flash_device.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

namespace aquoman {
namespace {

struct Shape
{
    const char *name;
    int width; ///< declared column width (4 for date-like, else 8)
    std::vector<std::int64_t> vals;
};

std::vector<Shape>
valueShapes()
{
    Rng rng(20260808);
    std::vector<Shape> shapes;
    shapes.push_back({"empty", 8, {}});
    shapes.push_back({"single", 8, {42}});
    shapes.push_back({"single_null", 8, {kEncodedNull}});
    shapes.push_back(
        {"all_nulls", 8,
         std::vector<std::int64_t>(5000, kEncodedNull)});

    Shape runs{"long_runs_with_nulls", 8, {}};
    for (std::int64_t i = 0; i < 40000; ++i) {
        std::int64_t run = i / 700;
        runs.vals.push_back(run % 9 == 0 ? kEncodedNull : run * 37);
    }
    shapes.push_back(std::move(runs));

    Shape lowcard{"low_cardinality_shuffle", 8, {}};
    for (std::int64_t i = 0; i < 30000; ++i)
        lowcard.vals.push_back(rng.uniform(0, 40) * 1'000'000'007ll);
    shapes.push_back(std::move(lowcard));

    Shape band{"dense_band", 8, {}};
    for (std::int64_t i = 0; i < 30000; ++i)
        band.vals.push_back(5'000'000'000ll + rng.uniform(0, 99999));
    shapes.push_back(std::move(band));

    Shape wide{"random_wide", 8, {}};
    for (std::int64_t i = 0; i < 20000; ++i)
        wide.vals.push_back(static_cast<std::int64_t>(
            rng.uniform(std::numeric_limits<std::int32_t>::min(),
                        std::numeric_limits<std::int32_t>::max()))
            * 1'000'003);
    shapes.push_back(std::move(wide));

    Shape dates{"sorted_dates_w4", 4, {}};
    for (std::int64_t i = 0; i < 25000; ++i)
        dates.vals.push_back(i % 1000 == 0 ? kEncodedNull
                                           : 8036 + i / 11);
    shapes.push_back(std::move(dates));

    Shape outliers{"sorted_with_outliers", 8, {}};
    for (std::int64_t i = 0; i < 20000; ++i)
        outliers.vals.push_back(
            i % 4096 == 17 ? (1ll << 60) + i : i * 3);
    shapes.push_back(std::move(outliers));
    return shapes;
}

/** Persist every page through a real flash device, read it back,
 *  decode, and compare with the original values. */
void
expectRoundTrip(const Shape &s)
{
    ColumnEncoding enc = encodeValues(
        s.vals.data(), static_cast<std::int64_t>(s.vals.size()),
        s.width);
    std::int64_t covered = 0;
    for (const EncodedPage &p : enc.pages) {
        EXPECT_EQ(p.firstRow, covered) << s.name;
        EXPECT_LE(static_cast<std::int64_t>(p.bytes.size()),
                  kFlashPageBytes)
            << s.name;
        covered += p.rows;
    }
    EXPECT_EQ(covered, static_cast<std::int64_t>(s.vals.size()))
        << s.name;

    FlashConfig fc;
    fc.capacityBytes = 64ll << 20;
    FlashDevice dev(fc);
    std::vector<std::int64_t> decoded;
    decoded.reserve(s.vals.size());
    for (const EncodedPage &p : enc.pages) {
        FlashExtent ext = dev.allocate(
            static_cast<std::int64_t>(p.bytes.size()));
        dev.write(ext, 0, p.bytes.data(),
                  static_cast<std::int64_t>(p.bytes.size()));
        std::vector<std::uint8_t> persisted(p.bytes.size());
        dev.read(ext, 0, persisted.data(),
                 static_cast<std::int64_t>(persisted.size()));
        ASSERT_EQ(persisted, p.bytes) << s.name;
        decodePage(persisted.data(), persisted.size(), decoded);
    }
    ASSERT_EQ(decoded, s.vals) << s.name;
}

TEST(EncodingProperty, RoundTripsEveryShapeThroughFlash)
{
    for (const Shape &s : valueShapes())
        expectRoundTrip(s);
}

TEST(EncodingProperty, ZoneMapsMatchBruteForce)
{
    for (const Shape &s : valueShapes()) {
        ColumnEncoding enc = encodeValues(
            s.vals.data(), static_cast<std::int64_t>(s.vals.size()),
            s.width);
        for (const EncodedPage &p : enc.pages) {
            PageZone brute;
            brute.rows = p.rows;
            for (std::int64_t i = 0; i < p.rows; ++i) {
                std::int64_t v = s.vals[p.firstRow + i];
                if (v == kEncodedNull) {
                    ++brute.nullCount;
                    continue;
                }
                brute.min = std::min(brute.min, v);
                brute.max = std::max(brute.max, v);
            }
            EXPECT_EQ(p.zone.rows, brute.rows) << s.name;
            EXPECT_EQ(p.zone.nullCount, brute.nullCount) << s.name;
            if (!brute.allNull()) {
                EXPECT_EQ(p.zone.min, brute.min) << s.name;
                EXPECT_EQ(p.zone.max, brute.max) << s.name;
            }
        }
    }
}

std::int64_t
bruteCount(const std::vector<std::int64_t> &vals, std::int64_t first,
           std::int64_t rows, ZoneOp op, std::int64_t c)
{
    std::int64_t count = 0;
    for (std::int64_t i = first; i < first + rows; ++i) {
        std::int64_t v = vals[i];
        if (v == kEncodedNull)
            continue;
        bool hit = false;
        switch (op) {
          case ZoneOp::Eq: hit = v == c; break;
          case ZoneOp::Ne: hit = v != c; break;
          case ZoneOp::Lt: hit = v < c; break;
          case ZoneOp::Le: hit = v <= c; break;
          case ZoneOp::Gt: hit = v > c; break;
          case ZoneOp::Ge: hit = v >= c; break;
        }
        count += hit;
    }
    return count;
}

/**
 * Zone verdicts must be sound (NonePass really excludes every row,
 * AllPass really admits every non-null row) and the code-domain
 * kernel must agree with evaluation over the decoded values, for
 * every codec, op and a constant sweep spanning each page's range.
 */
TEST(EncodingProperty, ZoneVerdictsAndCodeDomainEvalAreExact)
{
    constexpr ZoneOp kOps[] = {ZoneOp::Eq, ZoneOp::Ne, ZoneOp::Lt,
                               ZoneOp::Le, ZoneOp::Gt, ZoneOp::Ge};
    for (const Shape &s : valueShapes()) {
        ColumnEncoding enc = encodeValues(
            s.vals.data(), static_cast<std::int64_t>(s.vals.size()),
            s.width);
        for (const EncodedPage &p : enc.pages) {
            std::vector<std::int64_t> consts{0, 42};
            if (!p.zone.allNull()) {
                for (std::int64_t c :
                     {p.zone.min - 1, p.zone.min,
                      p.zone.min / 2 + p.zone.max / 2, p.zone.max,
                      p.zone.max + 1})
                    consts.push_back(c);
            }
            for (ZoneOp op : kOps) {
                for (std::int64_t c : consts) {
                    std::int64_t expected =
                        bruteCount(s.vals, p.firstRow, p.rows, op, c);
                    EXPECT_EQ(countMatchesEncoded(p, op, c), expected)
                        << s.name << " op "
                        << static_cast<int>(op) << " c " << c;
                    ZoneVerdict v = zoneCompare(p.zone, op, c);
                    if (v == ZoneVerdict::NonePass)
                        EXPECT_EQ(expected, 0) << s.name;
                    if (v == ZoneVerdict::AllPass)
                        EXPECT_EQ(expected, p.rows - p.zone.nullCount)
                            << s.name;
                }
            }
        }
    }
}

/** Canonical multiset-of-rows form for result comparison. */
std::vector<std::string>
canonicalRows(const RelTable &t)
{
    std::vector<std::string> rows;
    for (std::int64_t r = 0; r < t.numRows(); ++r) {
        std::ostringstream os;
        for (int c = 0; c < t.numColumns(); ++c) {
            const RelColumn &col = t.col(c);
            if (col.type == ColumnType::Varchar)
                os << col.str(r);
            else
                os << col.get(r);
            os << "|";
        }
        rows.push_back(os.str());
    }
    std::sort(rows.begin(), rows.end());
    return rows;
}

/**
 * Compressed device runs are part of the simulator's determinism
 * contract: results, modelled seconds, flash bytes, and the zone-map
 * counters must be bit-identical whether the pool runs with 1 worker
 * or 4 (AQUOMAN_THREADS={1,4}), with compression on or off.
 */
TEST(EncodingDeterminism, DeviceRunsAreThreadCountInvariant)
{
    bool saved = compressionEnabled();
    tpch::TpchConfig cfg;
    cfg.scaleFactor = 0.01;
    auto db = tpch::TpchDatabase::generate(cfg);

    for (bool compress : {true, false}) {
        setCompressionEnabled(compress);
        FlashConfig fc;
        fc.capacityBytes = 4ll << 30;
        FlashDevice dev(fc);
        ControllerSwitch sw(dev);
        TableStore store(sw);
        Catalog cat;
        db.installInto(cat, store);

        for (int q : {1, 6}) {
            std::vector<OffloadedQueryResult> runs;
            for (int threads : {1, 4}) {
                ThreadPool::setGlobalParallelism(threads);
                AquomanDevice device(cat, sw,
                                     AquomanConfig::paper40());
                runs.push_back(
                    device.runQuery(tpch::tpchQuery(q, 0.01)));
            }
            const AquomanRunStats &a = runs[0].stats;
            const AquomanRunStats &b = runs[1].stats;
            EXPECT_EQ(canonicalRows(runs[0].result),
                      canonicalRows(runs[1].result))
                << "q" << q << " compress " << compress;
            EXPECT_EQ(a.deviceSeconds, b.deviceSeconds) << "q" << q;
            EXPECT_EQ(a.deviceFlashBytes, b.deviceFlashBytes)
                << "q" << q;
            EXPECT_EQ(a.zonePagesConsidered, b.zonePagesConsidered)
                << "q" << q;
            EXPECT_EQ(a.zonePagesSkipped, b.zonePagesSkipped)
                << "q" << q;
            if (!compress) {
                EXPECT_EQ(a.zonePagesConsidered, 0) << "q" << q;
                EXPECT_EQ(a.zonePagesSkipped, 0) << "q" << q;
            }
        }
    }
    ThreadPool::setGlobalParallelism(
        ThreadPool::configuredParallelism());
    setCompressionEnabled(saved);
}

} // namespace
} // namespace aquoman
