/** @file
 * Unit tests for SelectionVector: dense/sparse representations, the
 * canonical promotion of full-prefix sparse lists back to dense, and
 * conjunct-style shrinking with BitVector masks.
 */

#include <gtest/gtest.h>

#include "columnstore/selection_vector.hh"

namespace aquoman {
namespace {

TEST(SelectionVectorTest, DefaultIsEmptyDense)
{
    SelectionVector s;
    EXPECT_TRUE(s.isDense());
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0);
    EXPECT_EQ(s.data(), nullptr);
    EXPECT_TRUE(s.toIndices().empty());
}

TEST(SelectionVectorTest, DenseCoversPrefix)
{
    SelectionVector s = SelectionVector::dense(5);
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 5);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.data(), nullptr);
    for (std::int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(s[i], i);
    EXPECT_EQ(s.toIndices(), (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(SelectionVectorTest, SparseKeepsAscendingRows)
{
    SelectionVector s = SelectionVector::sparse({1, 4, 7});
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[1], 4);
    EXPECT_EQ(s[2], 7);
    ASSERT_NE(s.data(), nullptr);
    EXPECT_EQ(s.data()[2], 7);
    EXPECT_EQ(s.toIndices(), (std::vector<std::int64_t>{1, 4, 7}));
}

TEST(SelectionVectorTest, FullPrefixSparsePromotesToDense)
{
    // isDense() is canonical: [0, n) never hides behind an index list.
    SelectionVector s = SelectionVector::sparse({0, 1, 2, 3});
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 4);
    EXPECT_EQ(s.data(), nullptr);
    EXPECT_EQ(s[3], 3);
}

TEST(SelectionVectorTest, EmptySparsePromotesToDense)
{
    SelectionVector s = SelectionVector::sparse({});
    EXPECT_TRUE(s.isDense());
    EXPECT_TRUE(s.empty());
}

TEST(SelectionVectorTest, AssignReplacesSelection)
{
    SelectionVector s = SelectionVector::dense(10);
    s.assign({2, 3, 9});
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[2], 9);

    // Assigning the full prefix promotes back to dense.
    s.assign({0, 1, 2});
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 3);
}

TEST(SelectionVectorTest, FilterShrinksDenseToSparse)
{
    // Masks index selection positions, not row ids.
    SelectionVector s = SelectionVector::dense(6);
    BitVector keep(6);
    keep.set(1, true);
    keep.set(4, true);
    s.filter(keep);
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 2);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[1], 4);
}

TEST(SelectionVectorTest, FilterComposesConjuncts)
{
    // Second conjunct's mask positions are relative to the survivors
    // of the first, exactly how shrinking conjunct evaluation uses it.
    SelectionVector s = SelectionVector::dense(8);
    BitVector even(8);
    for (std::int64_t i = 0; i < 8; i += 2)
        even.set(i, true);
    s.filter(even); // rows 0 2 4 6
    ASSERT_EQ(s.size(), 4);

    BitVector tail(4);
    tail.set(2, true);
    tail.set(3, true);
    s.filter(tail);
    EXPECT_EQ(s.size(), 2);
    EXPECT_EQ(s[0], 4);
    EXPECT_EQ(s[1], 6);
}

TEST(SelectionVectorTest, FilterAllTrueOnDenseStaysDense)
{
    SelectionVector s = SelectionVector::dense(4);
    BitVector all(4);
    for (std::int64_t i = 0; i < 4; ++i)
        all.set(i, true);
    s.filter(all);
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 4);
}

TEST(SelectionVectorTest, FilterAllFalseEmptiesSelection)
{
    SelectionVector s = SelectionVector::sparse({3, 5});
    BitVector none(2);
    s.filter(none);
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.isDense()); // empty is canonically dense
    EXPECT_TRUE(s.toIndices().empty());
}

TEST(SelectionVectorTest, SparsePrefixWithGapStaysSparse)
{
    // Starts at row 0 but skips rows: not the full prefix [0, n), so
    // it must stay sparse ({0,2,3} has back()==3 != size()-1==2).
    SelectionVector s = SelectionVector::sparse({0, 2, 3});
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[1], 2);
}

TEST(SelectionVectorTest, WordWiseFilterMatchesPositionalReference)
{
    // 100 rows spans three 32-bit mask words with a ragged tail; the
    // word-at-a-time extraction must keep exactly the positions a
    // per-bit loop keeps, in the same order.
    constexpr std::int64_t kRows = 100;
    SelectionVector s = SelectionVector::dense(kRows);
    BitVector mask(kRows);
    for (std::int64_t i = 0; i < kRows; ++i)
        mask.set(i, i % 7 == 0 || i % 31 == 0);
    std::vector<std::int64_t> expect;
    for (std::int64_t i = 0; i < kRows; ++i)
        if (mask.get(i))
            expect.push_back(i);
    s.filter(mask);
    EXPECT_EQ(s.toIndices(), expect);

    // Second fold over the now-sparse selection: mask indexes
    // positions, and word boundaries no longer align with row ids.
    BitVector second(s.size());
    for (std::int64_t p = 0; p < s.size(); ++p)
        second.set(p, p % 2 == 1);
    std::vector<std::int64_t> expect2;
    for (std::int64_t p = 0; p < static_cast<std::int64_t>(expect.size());
         ++p)
        if (second.get(p))
            expect2.push_back(expect[p]);
    s.filter(second);
    EXPECT_EQ(s.toIndices(), expect2);
}

TEST(SelectionVectorTest, FilterKeepsExactWordBoundaries)
{
    // Survivors exactly at bits 31/32/63/64 — the ctz walk's word
    // seams — plus an all-ones tail word.
    constexpr std::int64_t kRows = 70;
    SelectionVector s = SelectionVector::dense(kRows);
    BitVector mask(kRows);
    for (std::int64_t i : {31, 32, 63, 64, 68, 69})
        mask.set(i, true);
    s.filter(mask);
    EXPECT_EQ(s.toIndices(),
              (std::vector<std::int64_t>{31, 32, 63, 64, 68, 69}));
}

TEST(SelectionVectorTest, AllTrueMaskLeavesSparseSelectionUntouched)
{
    SelectionVector s = SelectionVector::sparse({2, 40, 41, 99});
    BitVector all(4, true);
    s.filter(all);
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.toIndices(),
              (std::vector<std::int64_t>{2, 40, 41, 99}));
}

} // namespace
} // namespace aquoman
