/** @file
 * Unit tests for SelectionVector: dense/sparse representations, the
 * canonical promotion of full-prefix sparse lists back to dense, and
 * conjunct-style shrinking with BitVector masks.
 */

#include <gtest/gtest.h>

#include "columnstore/selection_vector.hh"

namespace aquoman {
namespace {

TEST(SelectionVectorTest, DefaultIsEmptyDense)
{
    SelectionVector s;
    EXPECT_TRUE(s.isDense());
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0);
    EXPECT_EQ(s.data(), nullptr);
    EXPECT_TRUE(s.toIndices().empty());
}

TEST(SelectionVectorTest, DenseCoversPrefix)
{
    SelectionVector s = SelectionVector::dense(5);
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 5);
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.data(), nullptr);
    for (std::int64_t i = 0; i < 5; ++i)
        EXPECT_EQ(s[i], i);
    EXPECT_EQ(s.toIndices(), (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(SelectionVectorTest, SparseKeepsAscendingRows)
{
    SelectionVector s = SelectionVector::sparse({1, 4, 7});
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[1], 4);
    EXPECT_EQ(s[2], 7);
    ASSERT_NE(s.data(), nullptr);
    EXPECT_EQ(s.data()[2], 7);
    EXPECT_EQ(s.toIndices(), (std::vector<std::int64_t>{1, 4, 7}));
}

TEST(SelectionVectorTest, FullPrefixSparsePromotesToDense)
{
    // isDense() is canonical: [0, n) never hides behind an index list.
    SelectionVector s = SelectionVector::sparse({0, 1, 2, 3});
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 4);
    EXPECT_EQ(s.data(), nullptr);
    EXPECT_EQ(s[3], 3);
}

TEST(SelectionVectorTest, EmptySparsePromotesToDense)
{
    SelectionVector s = SelectionVector::sparse({});
    EXPECT_TRUE(s.isDense());
    EXPECT_TRUE(s.empty());
}

TEST(SelectionVectorTest, AssignReplacesSelection)
{
    SelectionVector s = SelectionVector::dense(10);
    s.assign({2, 3, 9});
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[2], 9);

    // Assigning the full prefix promotes back to dense.
    s.assign({0, 1, 2});
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 3);
}

TEST(SelectionVectorTest, FilterShrinksDenseToSparse)
{
    // Masks index selection positions, not row ids.
    SelectionVector s = SelectionVector::dense(6);
    BitVector keep(6);
    keep.set(1, true);
    keep.set(4, true);
    s.filter(keep);
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 2);
    EXPECT_EQ(s[0], 1);
    EXPECT_EQ(s[1], 4);
}

TEST(SelectionVectorTest, FilterComposesConjuncts)
{
    // Second conjunct's mask positions are relative to the survivors
    // of the first, exactly how shrinking conjunct evaluation uses it.
    SelectionVector s = SelectionVector::dense(8);
    BitVector even(8);
    for (std::int64_t i = 0; i < 8; i += 2)
        even.set(i, true);
    s.filter(even); // rows 0 2 4 6
    ASSERT_EQ(s.size(), 4);

    BitVector tail(4);
    tail.set(2, true);
    tail.set(3, true);
    s.filter(tail);
    EXPECT_EQ(s.size(), 2);
    EXPECT_EQ(s[0], 4);
    EXPECT_EQ(s[1], 6);
}

TEST(SelectionVectorTest, FilterAllTrueOnDenseStaysDense)
{
    SelectionVector s = SelectionVector::dense(4);
    BitVector all(4);
    for (std::int64_t i = 0; i < 4; ++i)
        all.set(i, true);
    s.filter(all);
    EXPECT_TRUE(s.isDense());
    EXPECT_EQ(s.size(), 4);
}

TEST(SelectionVectorTest, FilterAllFalseEmptiesSelection)
{
    SelectionVector s = SelectionVector::sparse({3, 5});
    BitVector none(2);
    s.filter(none);
    EXPECT_TRUE(s.empty());
    EXPECT_TRUE(s.isDense()); // empty is canonically dense
    EXPECT_TRUE(s.toIndices().empty());
}

TEST(SelectionVectorTest, SparsePrefixWithGapStaysSparse)
{
    // Starts at row 0 but skips rows: not the full prefix [0, n), so
    // it must stay sparse ({0,2,3} has back()==3 != size()-1==2).
    SelectionVector s = SelectionVector::sparse({0, 2, 3});
    EXPECT_FALSE(s.isDense());
    EXPECT_EQ(s.size(), 3);
    EXPECT_EQ(s[1], 2);
}

} // namespace
} // namespace aquoman
