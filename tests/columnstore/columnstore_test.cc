/** @file Unit tests for the column store and its flash persistence. */

#include <gtest/gtest.h>

#include <memory>

#include "columnstore/catalog.hh"
#include "columnstore/flash_layout.hh"
#include "columnstore/table.hh"
#include "common/compress_mode.hh"

namespace aquoman {
namespace {

std::shared_ptr<Table>
makeSales()
{
    auto t = std::make_shared<Table>("sales");
    auto &id = t->addColumn("id", ColumnType::Int64);
    auto &price = t->addColumn("price", ColumnType::Decimal);
    auto &day = t->addColumn("day", ColumnType::Date);
    auto &dept = t->addColumn("dept", ColumnType::Varchar);
    for (int i = 0; i < 1000; ++i) {
        id.push(i);
        price.push(100 + i);
        day.push(8000 + (i % 50));
        t->pushString(dept, i % 2 ? "toys" : "shoes");
    }
    return t;
}

TEST(StringHeapTest, InterningSharesStorage)
{
    StringHeap heap;
    auto a = heap.intern("hello");
    auto b = heap.intern("world");
    auto c = heap.intern("hello");
    EXPECT_EQ(a, c);
    EXPECT_NE(a, b);
    EXPECT_EQ(heap.get(a), "hello");
    EXPECT_EQ(heap.get(b), "world");
    EXPECT_EQ(heap.numStrings(), 2);
    EXPECT_EQ(heap.sizeBytes(), 12); // "hello\0world\0"
}

TEST(StringHeapTest, LikeLiteralRunPicksLongestRun)
{
    EXPECT_EQ(likeLiteralRun("%green%"), "green");
    EXPECT_EQ(likeLiteralRun("ab%longest_x%"), "longest");
    EXPECT_EQ(likeLiteralRun("under_score"), "under"); // tie keeps first
    EXPECT_EQ(likeLiteralRun("plain"), "plain");
    EXPECT_EQ(likeLiteralRun("%"), "");
    EXPECT_EQ(likeLiteralRun("%_%_"), "");
    EXPECT_EQ(likeLiteralRun(""), "");
}

TEST(StringHeapTest, MayContainScansAcrossHeapWithoutStraddling)
{
    StringHeap heap;
    heap.intern("forest green");
    heap.intern("metallic blue");
    EXPECT_TRUE(heap.mayContain("green"));
    EXPECT_TRUE(heap.mayContain("tallic"));
    EXPECT_TRUE(heap.mayContain("forest green"));
    EXPECT_FALSE(heap.mayContain("magenta"));
    // "greenmetallic" spans the NUL between two entries: no single
    // string contains it, and the NUL separator must stop the match.
    EXPECT_FALSE(heap.mayContain("greenmetallic"));
    // First-byte hits that fail the memcmp must keep scanning.
    EXPECT_FALSE(heap.mayContain("greet"));
    EXPECT_TRUE(heap.mayContain("")); // vacuous on a non-empty heap
    StringHeap empty;
    EXPECT_FALSE(empty.mayContain(""));
    EXPECT_FALSE(empty.mayContain("x"));
}

TEST(TableTest, ColumnLookupAndTypes)
{
    auto t = makeSales();
    EXPECT_EQ(t->numColumns(), 4);
    EXPECT_EQ(t->numRows(), 1000);
    EXPECT_EQ(t->col("price").type(), ColumnType::Decimal);
    EXPECT_EQ(t->indexOf("day"), 2);
    EXPECT_TRUE(t->hasColumn("dept"));
    EXPECT_FALSE(t->hasColumn("nope"));
    EXPECT_THROW(t->col("nope"), FatalError);
    EXPECT_EQ(t->getString(t->col("dept"), 0), "shoes");
    EXPECT_EQ(t->getString(t->col("dept"), 1), "toys");
}

TEST(TableTest, StoredBytesUsesOnFlashWidths)
{
    auto t = makeSales();
    // id: 8B, price: 8B, day: 4B, dept offsets: 8B, heap: 11B.
    std::int64_t expect = 1000 * (8 + 8 + 4 + 8) + t->strings().sizeBytes();
    EXPECT_EQ(t->storedBytes(), expect);
}

class FlashLayoutTest : public ::testing::Test
{
  protected:
    FlashLayoutTest() : dev(cfg()), sw(dev), store(sw) {}

    static FlashConfig
    cfg()
    {
        FlashConfig c;
        c.capacityBytes = 64 << 20;
        return c;
    }

    FlashDevice dev;
    ControllerSwitch sw;
    TableStore store;
};

TEST_F(FlashLayoutTest, RoundTripAllTypes)
{
    auto t = makeSales();
    auto resident = store.store(t);
    std::vector<std::int64_t> vals;
    for (int c = 0; c < t->numColumns(); ++c) {
        resident->readColumnRange(sw, FlashPort::Host, c, 0, t->numRows(),
                                  vals);
        for (std::int64_t r = 0; r < t->numRows(); ++r)
            EXPECT_EQ(vals[r], t->col(c).get(r)) << "col " << c;
    }
}

TEST_F(FlashLayoutTest, PartialRangeRead)
{
    auto t = makeSales();
    auto resident = store.store(t);
    std::vector<std::int64_t> vals;
    resident->readColumnRange(sw, FlashPort::Aquoman, 0, 500, 600, vals);
    ASSERT_EQ(vals.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(vals[i], 500 + i);
    // AQUOMAN port traffic was accounted.
    EXPECT_GT(sw.stats().get("aquoman.bytesRead"), 0);
}

TEST_F(FlashLayoutTest, DateColumnUsesFourBytes)
{
    // The raw (uncompressed) layout stores dates at 4 bytes per row.
    bool was = compressionEnabled();
    setCompressionEnabled(false);
    auto t = makeSales();
    auto resident = store.store(t);
    setCompressionEnabled(was);
    const FlashExtent &ext = resident->extents().columnExtents[2];
    EXPECT_EQ(ext.byteLength, 1000 * 4);
    EXPECT_EQ(resident->encodingMeta(2), nullptr);
}

TEST_F(FlashLayoutTest, EncodedLayoutShrinksLowCardinalityColumns)
{
    bool was = compressionEnabled();
    setCompressionEnabled(true);
    auto t = makeSales();
    auto resident = store.store(t);
    setCompressionEnabled(was);
    // day has 50 distinct values: the dictionary/FOR page encodings
    // must beat the 4-byte raw layout, and the extent holds whole
    // flash pages of encoded blocks.
    const ColumnLayoutMeta *enc = resident->encodingMeta(2);
    ASSERT_NE(enc, nullptr);
    EXPECT_EQ(enc->rows, 1000);
    EXPECT_LT(enc->encodedBytes, 1000 * 4);
    const FlashExtent &ext = resident->extents().columnExtents[2];
    EXPECT_EQ(ext.byteLength, enc->numPages() * kFlashPageBytes);
    // Zone maps cover the whole column exactly.
    std::int64_t rows = 0;
    for (const PageBlockMeta &p : enc->pages) {
        EXPECT_EQ(p.firstRow, rows);
        rows += p.rows;
        EXPECT_GE(p.zone.min, 8000);
        EXPECT_LE(p.zone.max, 8049);
        EXPECT_EQ(p.zone.nullCount, 0);
    }
    EXPECT_EQ(rows, 1000);
}

TEST_F(FlashLayoutTest, CatalogMetadata)
{
    Catalog cat;
    auto t = makeSales();
    auto resident = store.store(t);
    CatalogEntry &e = cat.put(t, resident);
    e.densePrimaryKey = "id";
    EXPECT_TRUE(cat.has("sales"));
    EXPECT_EQ(cat.get("sales").densePrimaryKey, "id");
    EXPECT_THROW(cat.get("missing"), FatalError);
}

} // namespace
} // namespace aquoman
