/**
 * @file
 * Inspector for --slo-report files written by bench/service_workload:
 *
 *   slo_report <report.json>
 *       Pretty-print the per-run, per-tenant SLO timeline: totals,
 *       windowed latency quantiles, burn rates, error-budget
 *       consumption, and burn-rate alert firings.
 *
 *   slo_report --diff <baseline.json> <candidate.json> [--tolerance T]
 *       Structural diff of two reports. Every missing member is named
 *       together with the side it is missing from; numeric leaves
 *       compare exactly unless --tolerance (relative) is given.
 *
 * Exit codes: 0 pass / identical, 1 differences found, 2 usage or
 * parse error.
 */

#include "bench_diff_core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace aquoman::tools;

namespace {

// ---------------------------------------------------------------------
// Pretty printer
// ---------------------------------------------------------------------

double
num(const JsonValue *v, double fallback = 0.0)
{
    return v ? v->numberOr(fallback) : fallback;
}

void
printRun(const JsonValue &run)
{
    const JsonValue *label = run.find("label");
    std::printf("run %s  (overload x%.1f, %s)\n",
                label && label->kind == JsonValue::Kind::String
                    ? label->str.c_str() : "?",
                num(run.find("overload"), 1.0),
                num(run.find("fifo")) != 0.0 ? "fifo" : "drr");

    const JsonValue *slo = run.find("slo");
    if (!slo) {
        std::printf("  (no slo section)\n");
        return;
    }
    const JsonValue *tenants = slo->find("tenants");
    if (tenants && tenants->kind == JsonValue::Kind::Array) {
        for (const JsonValue &t : tenants->array) {
            const JsonValue *name = t.find("name");
            const JsonValue *obj = t.find("objective");
            std::printf("  tenant %-12s",
                        name && name->kind == JsonValue::Kind::String
                            ? name->str.c_str() : "?");
            if (obj && obj->kind == JsonValue::Kind::Object)
                std::printf(" slo<=%.3fs @%.2f%%",
                            num(obj->find("latency_target_seconds")),
                            100.0 * num(obj->find("attainment")));
            else
                std::printf(" (no objective)");
            const JsonValue *tot = t.find("totals");
            if (tot)
                std::printf("  done=%g viol=%g shed=%g susp=%g "
                            "attain=%.4f budget=%.3f\n",
                            num(tot->find("completed")),
                            num(tot->find("violations")),
                            num(tot->find("shed")),
                            num(tot->find("suspended")),
                            num(tot->find("attainment"), 1.0),
                            num(tot->find("budget_consumed")));
            else
                std::printf("\n");

            const JsonValue *wins = t.find("windows");
            if (!wins || wins->kind != JsonValue::Kind::Array
                || wins->array.empty())
                continue;
            std::printf("    %6s %9s %5s %5s %5s %5s %8s %8s %8s "
                        "%7s %7s\n",
                        "win", "start_s", "done", "viol", "shed",
                        "susp", "p50_s", "p90_s", "p99_s", "burn",
                        "budget");
            for (const JsonValue &w : wins->array) {
                const JsonValue *lat = w.find("latency");
                std::printf("    %6.0f %9.2f %5.0f %5.0f %5.0f %5.0f "
                            "%8.4f %8.4f %8.4f %7.2f %7.3f\n",
                            num(w.find("window")),
                            num(w.find("start_seconds")),
                            num(w.find("completed")),
                            num(w.find("violations")),
                            num(w.find("shed")),
                            num(w.find("suspended")),
                            lat ? num(lat->find("p50")) : 0.0,
                            lat ? num(lat->find("p90")) : 0.0,
                            lat ? num(lat->find("p99")) : 0.0,
                            num(w.find("burn")),
                            num(w.find("budget_consumed")));
            }
        }
    }
    const JsonValue *alerts = slo->find("alerts");
    if (alerts && alerts->kind == JsonValue::Kind::Array) {
        if (alerts->array.empty()) {
            std::printf("  alerts: none\n");
        } else {
            for (const JsonValue &a : alerts->array) {
                const JsonValue *tn = a.find("tenant");
                const JsonValue *rule = a.find("rule");
                std::printf("  ALERT %-8s tenant=%-12s at=%.2fs "
                            "short_burn=%.2f long_burn=%.2f\n",
                            rule && rule->kind == JsonValue::Kind::String
                                ? rule->str.c_str() : "?",
                            tn && tn->kind == JsonValue::Kind::String
                                ? tn->str.c_str() : "?",
                            num(a.find("at_seconds")),
                            num(a.find("short_burn")),
                            num(a.find("long_burn")));
            }
        }
    }
}

int
prettyPrint(const std::string &path)
{
    JsonValue root;
    std::string error;
    if (!parseJsonFile(path, &root, &error)) {
        std::fprintf(stderr, "slo_report: %s\n", error.c_str());
        return 2;
    }
    std::printf("slo report %s  window=%.3gs seed=%g\n", path.c_str(),
                num(root.find("window_seconds")),
                num(root.find("seed")));
    const JsonValue *runs = root.find("runs");
    if (!runs || runs->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr,
                     "slo_report: %s has no \"runs\" array\n",
                     path.c_str());
        return 2;
    }
    for (const JsonValue &run : runs->array)
        printRun(run);
    return 0;
}

// ---------------------------------------------------------------------
// Structural diff
// ---------------------------------------------------------------------

struct DiffState
{
    double tolerance = 0.0;
    int differences = 0;
    int reported = 0;
    static constexpr int kMaxReported = 64;

    void
    report(const std::string &msg)
    {
        ++differences;
        if (reported < kMaxReported) {
            std::fprintf(stderr, "DIFF %s\n", msg.c_str());
            if (++reported == kMaxReported)
                std::fprintf(stderr,
                             "DIFF (further differences "
                             "suppressed)\n");
        }
    }
};

const char *
kindName(JsonValue::Kind k)
{
    switch (k) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

void
diffValue(const std::string &path, const JsonValue &a,
          const JsonValue &b, DiffState &st)
{
    if (a.kind != b.kind) {
        st.report(path + ": type " + kindName(a.kind)
                  + " in baseline vs " + kindName(b.kind)
                  + " in candidate");
        return;
    }
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return;
      case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean)
            st.report(path + ": " + (a.boolean ? "true" : "false")
                      + " vs " + (b.boolean ? "true" : "false"));
        return;
      case JsonValue::Kind::Number: {
        double denom = std::fabs(a.number) > 0.0
            ? std::fabs(a.number) : 1.0;
        double drift = std::fabs(b.number - a.number) / denom;
        if (drift > st.tolerance)
            st.report(detail::formatMsg(
                "%s: %.17g vs %.17g (rel %.3g > tol %.3g)",
                path.c_str(), a.number, b.number, drift,
                st.tolerance));
        return;
      }
      case JsonValue::Kind::String:
        if (a.str != b.str)
            st.report(path + ": \"" + a.str + "\" vs \"" + b.str
                      + "\"");
        return;
      case JsonValue::Kind::Array: {
        if (a.array.size() != b.array.size())
            st.report(detail::formatMsg(
                "%s: array length %zu in baseline vs %zu in "
                "candidate",
                path.c_str(), a.array.size(), b.array.size()));
        std::size_t n = std::min(a.array.size(), b.array.size());
        for (std::size_t i = 0; i < n; ++i)
            diffValue(detail::formatMsg("%s[%zu]", path.c_str(), i),
                      a.array[i], b.array[i], st);
        return;
      }
      case JsonValue::Kind::Object: {
        for (const auto &[key, av] : a.object) {
            const JsonValue *bv = b.find(key);
            if (bv == nullptr) {
                st.report(path + "." + key
                          + ": missing from candidate");
                continue;
            }
            diffValue(path + "." + key, av, *bv, st);
        }
        for (const auto &[key, bv] : b.object) {
            if (a.find(key) == nullptr)
                st.report(path + "." + key
                          + ": missing from baseline");
        }
        return;
      }
    }
}

int
diffReportsCmd(const std::string &a_path, const std::string &b_path,
               double tolerance)
{
    JsonValue a, b;
    std::string error;
    if (!parseJsonFile(a_path, &a, &error)
        || !parseJsonFile(b_path, &b, &error)) {
        std::fprintf(stderr, "slo_report: %s\n", error.c_str());
        return 2;
    }
    DiffState st;
    st.tolerance = tolerance;
    diffValue("$", a, b, st);
    if (st.differences == 0) {
        std::printf("slo_report: %s and %s match\n", a_path.c_str(),
                    b_path.c_str());
        return 0;
    }
    std::fprintf(stderr, "slo_report: %d difference(s) between %s and "
                 "%s\n",
                 st.differences, a_path.c_str(), b_path.c_str());
    return 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: slo_report <report.json>\n"
        "       slo_report --diff <baseline.json> <candidate.json> "
        "[--tolerance T]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool diff = false;
    double tolerance = 0.0;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--diff") {
            diff = true;
        } else if (a == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else {
            paths.push_back(a);
        }
    }
    if (diff) {
        if (paths.size() != 2)
            return usage();
        return diffReportsCmd(paths[0], paths[1], tolerance);
    }
    if (paths.size() != 1)
        return usage();
    return prettyPrint(paths[0]);
}
