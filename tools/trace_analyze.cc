/**
 * @file
 * Analyzer for --anatomy files written by bench/service_workload: the
 * per-query latency anatomy (wait-state ledger, compressed critical
 * path) plus the per-run cross-tenant blame matrix.
 *
 *   trace_analyze <anatomy.json> [--report <bench.json>] [--top K]
 *                 [--json <out.json>]
 *       Validate the anatomy invariants, then print per run the
 *       wait-class breakdown (seconds and share of total latency),
 *       the blame matrix, and the top-K slowest queries' critical
 *       paths. With --report, cross-check the anatomy against the
 *       bench's own --json report: the p99 recomputed from per-query
 *       latencies must reproduce modelled_p99_latency_seconds, and
 *       the report's modelled_wait_* / contention fields must equal
 *       the anatomy's aggregates exactly.
 *
 *   trace_analyze --diff <baseline.json> <candidate.json>
 *                 [--tolerance T]
 *       Structural diff of two --json summaries (same discipline as
 *       slo_report --diff): every missing member is named with the
 *       side it is missing from; numeric leaves compare exactly
 *       unless --tolerance (relative) is given.
 *
 * Invariants validated on every run (exit 1 when any fails):
 *  - exact wait partition: each query's six wait-class seconds sum —
 *    in fixed class order, on the parsed doubles — to
 *    done_seconds - submit_seconds bitwise (shed queries: all-zero);
 *  - blame row sums equal tenant_contention_seconds per tenant;
 *  - per-run wait_totals match the per-class sums over the queries
 *    (ulp-tolerant: the two sides accumulate in different orders);
 *  - critical paths tile [submit, done] contiguously (when segment
 *    collection was enabled).
 *
 * Exit codes: 0 pass / identical, 1 check failure or differences,
 * 2 usage or parse error.
 */

#include "bench_diff_core.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace aquoman::tools;

namespace {

/// Fixed wait-class order: must match obs::WaitClass declaration
/// order, which is also the order WaitLedger::toJson emits.
const char *const kWaitClasses[] = {
    "admission_queue", "dram_wait",    "device_busy",
    "device_exec",     "suspend_host", "host_finish",
};
constexpr int kNumWaitClasses = 6;

double
num(const JsonValue *v, double fallback = 0.0)
{
    return v ? v->numberOr(fallback) : fallback;
}

std::string
fmtNum(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/** Same nearest-rank percentile the service and bench use. */
double
percentileOf(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(sorted.size()))) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct CheckState
{
    int failures = 0;
    int reported = 0;
    static constexpr int kMaxReported = 64;

    void
    fail(const std::string &msg)
    {
        ++failures;
        if (reported < kMaxReported) {
            std::fprintf(stderr, "CHECK FAIL %s\n", msg.c_str());
            if (++reported == kMaxReported)
                std::fprintf(stderr,
                             "CHECK FAIL (further failures "
                             "suppressed)\n");
        }
    }
};

/** One parsed query of a run. */
struct QueryRow
{
    double id = -1.0;
    std::string name;
    int tenant = 0;
    double latency = 0.0;
    bool shed = false;
    double wait[kNumWaitClasses] = {};
    double contention = 0.0;
    const JsonValue *path = nullptr;
};

/** Earliest-wins argmax over the wait classes. */
int
dominantClass(const double (&wait)[kNumWaitClasses])
{
    int best = 0;
    for (int i = 1; i < kNumWaitClasses; ++i)
        if (wait[i] > wait[best])
            best = i;
    return best;
}

/**
 * Validate one run's anatomy and collect its rows. Run-local exact
 * checks: per-query partition, blame row sums vs
 * tenant_contention_seconds, wait_totals vs per-class query sums,
 * critical-path tiling.
 */
std::vector<QueryRow>
validateRun(const JsonValue &run, const std::string &label,
            CheckState &st)
{
    std::vector<QueryRow> rows;
    const JsonValue *queries = run.find("queries");
    if (!queries || queries->kind != JsonValue::Kind::Array) {
        st.fail(label + ": no \"queries\" array");
        return rows;
    }

    double classSum[kNumWaitClasses] = {};
    for (const JsonValue &q : queries->array) {
        QueryRow row;
        row.id = num(q.find("id"), -1.0);
        const JsonValue *name = q.find("name");
        if (name && name->kind == JsonValue::Kind::String)
            row.name = name->str;
        row.tenant = static_cast<int>(num(q.find("tenant")));
        double submit = num(q.find("submit_seconds"));
        double done = num(q.find("done_seconds"));
        row.latency = done - submit;
        row.shed = num(q.find("shed")) != 0.0;
        row.contention = num(q.find("contention_seconds"));
        row.path = q.find("path");

        const JsonValue *wait = q.find("wait");
        std::string qlabel =
            label + " query " + fmtNum(row.id);
        if (!wait || wait->kind != JsonValue::Kind::Object) {
            st.fail(qlabel + ": no \"wait\" ledger");
            continue;
        }
        double sum = 0.0;
        for (int i = 0; i < kNumWaitClasses; ++i) {
            const JsonValue *v = wait->find(kWaitClasses[i]);
            if (!v) {
                st.fail(qlabel + ": wait ledger missing class "
                        + kWaitClasses[i]);
                continue;
            }
            row.wait[i] = v->numberOr(0.0);
            sum += row.wait[i];
            classSum[i] += row.wait[i];
        }
        // The exact-partition contract: fixed-order class sum equals
        // end-to-end latency bitwise (all-zero for shed queries).
        if (sum != row.latency)
            st.fail(qlabel + ": wait classes sum to " + fmtNum(sum)
                    + " but done - submit = " + fmtNum(row.latency));
        if (row.shed && sum != 0.0)
            st.fail(qlabel + ": shed query has non-zero wait ledger");

        // Critical-path tiling: contiguous from submit to done.
        if (row.path && row.path->kind == JsonValue::Kind::Array
            && !row.path->array.empty()) {
            double cursor = submit;
            for (std::size_t si = 0; si < row.path->array.size();
                 ++si) {
                const JsonValue &seg = row.path->array[si];
                double s = num(seg.find("start_seconds"));
                double e = num(seg.find("end_seconds"));
                if (s != cursor) {
                    st.fail(qlabel + ": path segment "
                            + std::to_string(si) + " starts at "
                            + fmtNum(s) + ", expected " + fmtNum(cursor));
                    break;
                }
                cursor = e;
            }
            if (cursor != done)
                st.fail(qlabel + ": path ends at " + fmtNum(cursor)
                        + ", done at " + fmtNum(done));
        }
        rows.push_back(std::move(row));
    }

    // Aggregate ledger: wait_totals vs the per-class sums over the
    // queries. The service accumulates in completion order, this pass
    // in id order, so the comparison is ulp-tolerant — unlike the
    // per-query partition, which is bitwise.
    const JsonValue *totals = run.find("wait_totals");
    for (int i = 0; i < kNumWaitClasses; ++i) {
        double t = totals ? num(totals->find(kWaitClasses[i])) : 0.0;
        double denom = std::max(1.0, std::fabs(t));
        if (std::fabs(t - classSum[i]) > 1e-9 * denom)
            st.fail(label + ": wait_totals." + kWaitClasses[i] + " = "
                    + fmtNum(t) + " but queries sum to "
                    + fmtNum(classSum[i]));
    }

    // Blame row sums ARE each tenant's total contention wait.
    const JsonValue *blame = run.find("blame");
    const JsonValue *contention = run.find("tenant_contention_seconds");
    const JsonValue *seconds = blame ? blame->find("seconds") : nullptr;
    if (!seconds || seconds->kind != JsonValue::Kind::Array
        || !contention
        || contention->kind != JsonValue::Kind::Array) {
        st.fail(label + ": missing blame matrix or "
                "tenant_contention_seconds");
    } else {
        if (seconds->array.size() != contention->array.size())
            st.fail(label + ": blame rows vs contention entries "
                    "length mismatch");
        std::size_t n = std::min(seconds->array.size(),
                                 contention->array.size());
        for (std::size_t v = 0; v < n; ++v) {
            double rowSum = 0.0;
            for (const JsonValue &cell : seconds->array[v].array)
                rowSum += cell.numberOr(0.0);
            double want = contention->array[v].numberOr(0.0);
            if (rowSum != want)
                st.fail(label + ": blame row " + std::to_string(v)
                        + " sums to " + fmtNum(rowSum)
                        + " but tenant_contention_seconds = "
                        + fmtNum(want));
        }
    }
    return rows;
}

/**
 * Cross-check one run against the bench --json report: find the
 * run-level record (no "tenant" key) matching (overload, fifo), then
 * require the nearest-rank p99 recomputed from the anatomy's non-shed
 * latencies to reproduce modelled_p99_latency_seconds, and the
 * modelled_wait_* / modelled_contention_wait_seconds fields to equal
 * the anatomy aggregates exactly.
 */
void
crossCheckReport(const JsonValue &run, const std::string &label,
                 const std::vector<QueryRow> &rows,
                 const std::vector<Record> &records, CheckState &st)
{
    double overload = num(run.find("overload"), 1.0);
    double fifo = num(run.find("fifo"));
    const Record *rec = nullptr;
    for (const Record &r : records) {
        if (r.count("tenant"))
            continue;
        auto ov = r.find("overload");
        auto fi = r.find("fifo");
        if (ov != r.end() && fi != r.end() && ov->second == overload
            && fi->second == fifo) {
            rec = &r;
            break;
        }
    }
    if (rec == nullptr) {
        st.fail(label + ": no run record (overload=" + fmtNum(overload)
                + ", fifo=" + fmtNum(fifo) + ") in the bench report");
        return;
    }

    std::vector<double> lat;
    for (const QueryRow &q : rows)
        if (!q.shed)
            lat.push_back(q.latency);
    std::sort(lat.begin(), lat.end());
    double p99 = percentileOf(lat, 0.99);
    auto field = [&](const char *name) {
        auto it = rec->find(name);
        return it == rec->end() ? -1.0 : it->second;
    };
    double want = field("modelled_p99_latency_seconds");
    if (p99 != want)
        st.fail(label + ": anatomy p99 " + fmtNum(p99)
                + " does not reproduce modelled_p99_latency_seconds "
                + fmtNum(want));

    const JsonValue *totals = run.find("wait_totals");
    for (int i = 0; i < kNumWaitClasses; ++i) {
        std::string name =
            std::string("modelled_wait_") + kWaitClasses[i]
            + "_seconds";
        double repv = field(name.c_str());
        double anav = totals ? num(totals->find(kWaitClasses[i])) : 0.0;
        if (repv != anav)
            st.fail(label + ": " + name + " = " + fmtNum(repv)
                    + " in the report but " + fmtNum(anav)
                    + " in the anatomy");
    }
    const JsonValue *blame = run.find("blame");
    const JsonValue *seconds = blame ? blame->find("seconds") : nullptr;
    double blameTotal = 0.0;
    if (seconds)
        for (const JsonValue &r : seconds->array)
            for (const JsonValue &cell : r.array)
                blameTotal += cell.numberOr(0.0);
    double repc = field("modelled_contention_wait_seconds");
    if (repc != blameTotal)
        st.fail(label + ": modelled_contention_wait_seconds = "
                + fmtNum(repc) + " but the blame matrix sums to "
                + fmtNum(blameTotal));
}

// ---------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------

void
printRun(const JsonValue &run, const std::string &label,
         const std::vector<QueryRow> &rows, int topk)
{
    std::printf("\nrun %s  (overload x%.1f, %s): %zu queries\n",
                label.c_str(), num(run.find("overload"), 1.0),
                num(run.find("fifo")) != 0.0 ? "fifo" : "drr",
                rows.size());

    double classSum[kNumWaitClasses] = {};
    double total = 0.0;
    for (const QueryRow &q : rows)
        for (int i = 0; i < kNumWaitClasses; ++i) {
            classSum[i] += q.wait[i];
            total += q.wait[i];
        }
    std::printf("  %-16s %12s %7s\n", "wait class", "seconds",
                "share");
    for (int i = 0; i < kNumWaitClasses; ++i)
        std::printf("  %-16s %12.4f %6.1f%%\n", kWaitClasses[i],
                    classSum[i],
                    total > 0.0 ? 100.0 * classSum[i] / total : 0.0);

    const JsonValue *blame = run.find("blame");
    const JsonValue *tenants = blame ? blame->find("tenants") : nullptr;
    const JsonValue *seconds = blame ? blame->find("seconds") : nullptr;
    if (tenants && seconds
        && tenants->kind == JsonValue::Kind::Array) {
        std::printf("  blame (victim rows x culprit columns, "
                    "waiter-seconds):\n");
        std::printf("  %-14s", "victim\\culprit");
        for (const JsonValue &t : tenants->array)
            std::printf(" %12s", t.str.c_str());
        std::printf(" %12s\n", "row_sum");
        for (std::size_t v = 0; v < seconds->array.size(); ++v) {
            std::printf("  %-14s",
                        v < tenants->array.size()
                            ? tenants->array[v].str.c_str() : "?");
            double rowSum = 0.0;
            for (const JsonValue &cell : seconds->array[v].array) {
                std::printf(" %12.4f", cell.numberOr(0.0));
                rowSum += cell.numberOr(0.0);
            }
            std::printf(" %12.4f\n", rowSum);
        }
    }

    // Top-K slowest queries with their critical paths.
    std::vector<const QueryRow *> by_latency;
    for (const QueryRow &q : rows)
        if (!q.shed)
            by_latency.push_back(&q);
    std::sort(by_latency.begin(), by_latency.end(),
              [](const QueryRow *a, const QueryRow *b) {
                  if (a->latency != b->latency)
                      return a->latency > b->latency;
                  return a->id < b->id;
              });
    if (static_cast<int>(by_latency.size()) > topk)
        by_latency.resize(static_cast<std::size_t>(topk));
    std::printf("  top %zu critical paths:\n", by_latency.size());
    for (const QueryRow *q : by_latency) {
        std::printf("    #%.0f %-4s tenant=%d latency=%.4fs "
                    "dominant=%s\n",
                    q->id, q->name.c_str(), q->tenant, q->latency,
                    kWaitClasses[dominantClass(q->wait)]);
        if (!q->path || q->path->kind != JsonValue::Kind::Array)
            continue;
        for (const JsonValue &seg : q->path->array) {
            const JsonValue *cls = seg.find("class");
            const JsonValue *detail = seg.find("detail");
            double dur = num(seg.find("end_seconds"))
                - num(seg.find("start_seconds"));
            int device = static_cast<int>(num(seg.find("device"), -1));
            std::printf("      %-16s %9.4fs",
                        cls && cls->kind == JsonValue::Kind::String
                            ? cls->str.c_str() : "?",
                        dur);
            if (device >= 0)
                std::printf("  dev%d", device);
            if (detail && detail->kind == JsonValue::Kind::String
                && !detail->str.empty())
                std::printf("  %s", detail->str.c_str());
            std::printf("\n");
        }
    }
}

/** Deterministic summary JSON (stable key order, %.17g numbers). */
void
writeSummary(std::ostream &os, const JsonValue &root,
             const std::vector<std::vector<QueryRow>> &runRows,
             int topk)
{
    const JsonValue *runs = root.find("runs");
    os << "{\"seed\":" << fmtNum(num(root.find("seed")))
       << ",\"runs\":[";
    for (std::size_t ri = 0; ri < runs->array.size(); ++ri) {
        const JsonValue &run = runs->array[ri];
        const std::vector<QueryRow> &rows = runRows[ri];
        const JsonValue *label = run.find("label");
        os << (ri ? "," : "") << "{\"label\":\""
           << (label ? label->str : std::string()) << "\",\"overload\":"
           << fmtNum(num(run.find("overload"), 1.0)) << ",\"fifo\":"
           << fmtNum(num(run.find("fifo")));

        std::size_t shed = 0;
        double classSum[kNumWaitClasses] = {};
        std::vector<double> lat;
        for (const QueryRow &q : rows) {
            if (q.shed)
                ++shed;
            else
                lat.push_back(q.latency);
            for (int i = 0; i < kNumWaitClasses; ++i)
                classSum[i] += q.wait[i];
        }
        std::sort(lat.begin(), lat.end());
        os << ",\"queries\":" << rows.size() << ",\"shed\":" << shed
           << ",\"p50_seconds\":" << fmtNum(percentileOf(lat, 0.50))
           << ",\"p99_seconds\":" << fmtNum(percentileOf(lat, 0.99));
        os << ",\"wait_totals\":{";
        for (int i = 0; i < kNumWaitClasses; ++i)
            os << (i ? "," : "") << '"' << kWaitClasses[i] << "\":"
               << fmtNum(classSum[i]);
        os << '}';

        const JsonValue *contention =
            run.find("tenant_contention_seconds");
        os << ",\"tenant_contention_seconds\":[";
        if (contention
            && contention->kind == JsonValue::Kind::Array)
            for (std::size_t i = 0; i < contention->array.size(); ++i)
                os << (i ? "," : "")
                   << fmtNum(contention->array[i].numberOr(0.0));
        os << ']';

        std::vector<const QueryRow *> by_latency;
        for (const QueryRow &q : rows)
            if (!q.shed)
                by_latency.push_back(&q);
        std::sort(by_latency.begin(), by_latency.end(),
                  [](const QueryRow *a, const QueryRow *b) {
                      if (a->latency != b->latency)
                          return a->latency > b->latency;
                      return a->id < b->id;
                  });
        if (static_cast<int>(by_latency.size()) > topk)
            by_latency.resize(static_cast<std::size_t>(topk));
        os << ",\"top\":[";
        for (std::size_t i = 0; i < by_latency.size(); ++i) {
            const QueryRow *q = by_latency[i];
            os << (i ? "," : "") << "{\"id\":" << fmtNum(q->id)
               << ",\"name\":\"" << q->name << "\",\"tenant\":"
               << q->tenant << ",\"latency_seconds\":"
               << fmtNum(q->latency) << ",\"dominant\":\""
               << kWaitClasses[dominantClass(q->wait)] << "\"}";
        }
        os << "]}";
    }
    os << "]}\n";
}

// ---------------------------------------------------------------------
// Structural diff (same discipline as slo_report --diff)
// ---------------------------------------------------------------------

struct DiffState
{
    double tolerance = 0.0;
    int differences = 0;
    int reported = 0;
    static constexpr int kMaxReported = 64;

    void
    report(const std::string &msg)
    {
        ++differences;
        if (reported < kMaxReported) {
            std::fprintf(stderr, "DIFF %s\n", msg.c_str());
            if (++reported == kMaxReported)
                std::fprintf(stderr,
                             "DIFF (further differences "
                             "suppressed)\n");
        }
    }
};

const char *
kindName(JsonValue::Kind k)
{
    switch (k) {
      case JsonValue::Kind::Null: return "null";
      case JsonValue::Kind::Bool: return "bool";
      case JsonValue::Kind::Number: return "number";
      case JsonValue::Kind::String: return "string";
      case JsonValue::Kind::Array: return "array";
      case JsonValue::Kind::Object: return "object";
    }
    return "?";
}

void
diffValue(const std::string &path, const JsonValue &a,
          const JsonValue &b, DiffState &st)
{
    if (a.kind != b.kind) {
        st.report(path + ": type " + kindName(a.kind)
                  + " in baseline vs " + kindName(b.kind)
                  + " in candidate");
        return;
    }
    switch (a.kind) {
      case JsonValue::Kind::Null:
        return;
      case JsonValue::Kind::Bool:
        if (a.boolean != b.boolean)
            st.report(path + ": " + (a.boolean ? "true" : "false")
                      + " vs " + (b.boolean ? "true" : "false"));
        return;
      case JsonValue::Kind::Number: {
        double denom = std::fabs(a.number) > 0.0
            ? std::fabs(a.number) : 1.0;
        double drift = std::fabs(b.number - a.number) / denom;
        if (drift > st.tolerance)
            st.report(detail::formatMsg(
                "%s: %.17g vs %.17g (rel %.3g > tol %.3g)",
                path.c_str(), a.number, b.number, drift,
                st.tolerance));
        return;
      }
      case JsonValue::Kind::String:
        if (a.str != b.str)
            st.report(path + ": \"" + a.str + "\" vs \"" + b.str
                      + "\"");
        return;
      case JsonValue::Kind::Array: {
        if (a.array.size() != b.array.size())
            st.report(detail::formatMsg(
                "%s: array length %zu in baseline vs %zu in "
                "candidate",
                path.c_str(), a.array.size(), b.array.size()));
        std::size_t n = std::min(a.array.size(), b.array.size());
        for (std::size_t i = 0; i < n; ++i)
            diffValue(detail::formatMsg("%s[%zu]", path.c_str(), i),
                      a.array[i], b.array[i], st);
        return;
      }
      case JsonValue::Kind::Object: {
        for (const auto &[key, av] : a.object) {
            const JsonValue *bv = b.find(key);
            if (bv == nullptr) {
                st.report(path + "." + key
                          + ": missing from candidate");
                continue;
            }
            diffValue(path + "." + key, av, *bv, st);
        }
        for (const auto &[key, bv] : b.object) {
            if (a.find(key) == nullptr)
                st.report(path + "." + key
                          + ": missing from baseline");
        }
        return;
      }
    }
}

int
diffCmd(const std::string &a_path, const std::string &b_path,
        double tolerance)
{
    JsonValue a, b;
    std::string error;
    if (!parseJsonFile(a_path, &a, &error)
        || !parseJsonFile(b_path, &b, &error)) {
        std::fprintf(stderr, "trace_analyze: %s\n", error.c_str());
        return 2;
    }
    DiffState st;
    st.tolerance = tolerance;
    diffValue("$", a, b, st);
    if (st.differences == 0) {
        std::printf("trace_analyze: %s and %s match\n", a_path.c_str(),
                    b_path.c_str());
        return 0;
    }
    std::fprintf(stderr,
                 "trace_analyze: %d difference(s) between %s and %s\n",
                 st.differences, a_path.c_str(), b_path.c_str());
    return 1;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: trace_analyze <anatomy.json> [--report <bench.json>]\n"
        "                     [--top K] [--json <out.json>]\n"
        "       trace_analyze --diff <baseline.json> <candidate.json> "
        "[--tolerance T]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    bool diff = false;
    double tolerance = 0.0;
    int topk = 5;
    std::string report_path;
    std::string json_path;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--diff") {
            diff = true;
        } else if (a == "--tolerance" && i + 1 < argc) {
            tolerance = std::atof(argv[++i]);
        } else if (a == "--top" && i + 1 < argc) {
            topk = std::atoi(argv[++i]);
        } else if (a == "--report" && i + 1 < argc) {
            report_path = argv[++i];
        } else if (a == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else {
            paths.push_back(a);
        }
    }
    if (diff) {
        if (paths.size() != 2)
            return usage();
        return diffCmd(paths[0], paths[1], tolerance);
    }
    if (paths.size() != 1 || topk < 0)
        return usage();

    JsonValue root;
    std::string error;
    if (!parseJsonFile(paths[0], &root, &error)) {
        std::fprintf(stderr, "trace_analyze: %s\n", error.c_str());
        return 2;
    }
    const JsonValue *runs = root.find("runs");
    if (!runs || runs->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr, "trace_analyze: %s has no \"runs\" array\n",
                     paths[0].c_str());
        return 2;
    }

    std::vector<Record> records;
    if (!report_path.empty()
        && !parseReport(report_path, &records, &error)) {
        std::fprintf(stderr, "trace_analyze: %s\n", error.c_str());
        return 2;
    }

    std::printf("anatomy %s  seed=%g, %zu run(s)\n", paths[0].c_str(),
                num(root.find("seed")), runs->array.size());

    CheckState st;
    std::vector<std::vector<QueryRow>> runRows;
    for (const JsonValue &run : runs->array) {
        const JsonValue *label = run.find("label");
        std::string name =
            label && label->kind == JsonValue::Kind::String
                ? label->str : "?";
        runRows.push_back(validateRun(run, name, st));
        if (!report_path.empty())
            crossCheckReport(run, name, runRows.back(), records, st);
        printRun(run, name, runRows.back(), topk);
    }

    if (!json_path.empty()) {
        std::ofstream f(json_path);
        if (!f) {
            std::fprintf(stderr, "trace_analyze: cannot write %s\n",
                         json_path.c_str());
            return 2;
        }
        writeSummary(f, root, runRows, topk);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (st.failures > 0) {
        std::fprintf(stderr, "trace_analyze: %d check failure(s)\n",
                     st.failures);
        return 1;
    }
    std::printf("trace_analyze: all anatomy checks passed%s\n",
                report_path.empty() ? ""
                                    : " (report cross-check included)");
    return 0;
}
