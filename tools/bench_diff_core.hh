/**
 * @file
 * Core of the bench regression gate, split out of bench_diff.cc so the
 * matching / gating logic is unit-testable and the JSON machinery is
 * reusable by the other report tools (tools/slo_report).
 *
 * Three layers:
 *  - JsonParser: minimal recursive-descent reader primitives.
 *  - JsonValue / parseJsonFile: a full JSON value tree (object member
 *    order preserved) for tools that need more than flat numerics.
 *  - Record / parseReport / recordKey / diffReports: the bench_diff
 *    gate proper. A record key present in the baseline but absent from
 *    the candidate (or vice versa) is reported by name and side —
 *    never as a bare "no match" failure.
 */

#ifndef AQUOMAN_TOOLS_BENCH_DIFF_CORE_HH
#define AQUOMAN_TOOLS_BENCH_DIFF_CORE_HH

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace aquoman::tools {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON reader: objects, arrays, numbers,
// strings, literals.
// ---------------------------------------------------------------------

struct JsonParser
{
    const char *p;
    const char *end;
    std::string error;

    explicit JsonParser(const std::string &text)
        : p(text.data()), end(text.data() + text.size())
    {
    }

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n'
                           || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    peek(char c)
    {
        skipWs();
        return p < end && *p == c;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        std::string s;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\' && p < end) {
                char e = *p++;
                switch (e) {
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  case 'u':
                    // Keep the escape verbatim; field names the tools
                    // care about never use \u.
                    s += "\\u";
                    break;
                  default: s += e; break;
                }
            } else {
                s += c;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        if (out)
            *out = std::move(s);
        return true;
    }

    bool
    parseNumber(double *out)
    {
        skipWs();
        char *num_end = nullptr;
        double v = std::strtod(p, &num_end);
        if (num_end == p)
            return fail("expected number");
        p = num_end;
        if (out)
            *out = v;
        return true;
    }

    /** Parse and discard any JSON value. */
    bool
    skipValue()
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            if (peek('}'))
                return consume('}');
            do {
                if (!parseString(nullptr) || !consume(':')
                    || !skipValue())
                    return false;
            } while (peek(',') && consume(','));
            return consume('}');
          }
          case '[': {
            ++p;
            if (peek(']'))
                return consume(']');
            do {
                if (!skipValue())
                    return false;
            } while (peek(',') && consume(','));
            return consume(']');
          }
          case '"':
            return parseString(nullptr);
          case 't':
          case 'f':
          case 'n': {
            const char *lits[] = {"true", "false", "null"};
            for (const char *lit : lits) {
                auto len = static_cast<std::ptrdiff_t>(std::strlen(lit));
                if (end - p >= len && std::strncmp(p, lit, len) == 0) {
                    p += len;
                    return true;
                }
            }
            return fail("bad literal");
          }
          default:
            return parseNumber(nullptr);
        }
    }
};

// ---------------------------------------------------------------------
// Full JSON value tree (tools/slo_report and diff-by-path).
// ---------------------------------------------------------------------

struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /// Members in file order (deterministic writers sort their keys).
    std::vector<std::pair<std::string, JsonValue>> object;

    /** Member @p key of an object (nullptr when absent / not object). */
    const JsonValue *
    find(const std::string &key) const
    {
        if (kind != Kind::Object)
            return nullptr;
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }

    double
    numberOr(double fallback) const
    {
        return kind == Kind::Number ? number : fallback;
    }
};

inline bool
parseJsonValue(JsonParser &ps, JsonValue *out)
{
    ps.skipWs();
    if (ps.p >= ps.end)
        return ps.fail("unexpected end of input");
    switch (*ps.p) {
      case '{': {
        ++ps.p;
        out->kind = JsonValue::Kind::Object;
        if (ps.peek('}'))
            return ps.consume('}');
        do {
            std::string key;
            JsonValue v;
            if (!ps.parseString(&key) || !ps.consume(':')
                || !parseJsonValue(ps, &v))
                return false;
            out->object.emplace_back(std::move(key), std::move(v));
        } while (ps.peek(',') && ps.consume(','));
        return ps.consume('}');
      }
      case '[': {
        ++ps.p;
        out->kind = JsonValue::Kind::Array;
        if (ps.peek(']'))
            return ps.consume(']');
        do {
            JsonValue v;
            if (!parseJsonValue(ps, &v))
                return false;
            out->array.push_back(std::move(v));
        } while (ps.peek(',') && ps.consume(','));
        return ps.consume(']');
      }
      case '"':
        out->kind = JsonValue::Kind::String;
        return ps.parseString(&out->str);
      case 't':
      case 'f':
        out->kind = JsonValue::Kind::Bool;
        out->boolean = *ps.p == 't';
        return ps.skipValue();
      case 'n':
        out->kind = JsonValue::Kind::Null;
        return ps.skipValue();
      default:
        out->kind = JsonValue::Kind::Number;
        return ps.parseNumber(&out->number);
    }
}

inline bool
parseJsonFile(const std::string &path, JsonValue *out,
              std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string text = buf.str();
    JsonParser ps(text);
    if (!parseJsonValue(ps, out)) {
        *error = path + ": " + ps.error;
        return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Bench-report records and the regression gate.
// ---------------------------------------------------------------------

/** Numeric fields of one record; non-numeric members are dropped. */
using Record = std::map<std::string, double>;

/**
 * Parse a writeJsonReport file: {"records": [{...}, ...], ...}. Only
 * the records array is retained.
 */
inline bool
parseReport(const std::string &path, std::vector<Record> *out,
            std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string text = buf.str();

    JsonParser ps(text);
    auto bail = [&] {
        *error = path + ": " + ps.error;
        return false;
    };
    if (!ps.consume('{'))
        return bail();
    bool first = true;
    while (first || (ps.peek(',') && ps.consume(','))) {
        first = false;
        std::string key;
        if (!ps.parseString(&key) || !ps.consume(':'))
            return bail();
        if (key != "records") {
            if (!ps.skipValue())
                return bail();
            continue;
        }
        if (!ps.consume('['))
            return bail();
        if (!ps.peek(']')) {
            do {
                Record rec;
                if (!ps.consume('{'))
                    return bail();
                bool rec_first = true;
                while (rec_first || (ps.peek(',') && ps.consume(','))) {
                    rec_first = false;
                    std::string name;
                    if (!ps.parseString(&name) || !ps.consume(':'))
                        return bail();
                    ps.skipWs();
                    if (ps.p < ps.end
                        && (*ps.p == '-'
                            || (*ps.p >= '0' && *ps.p <= '9'))) {
                        double v = 0.0;
                        if (!ps.parseNumber(&v))
                            return bail();
                        rec[name] = v;
                    } else if (!ps.skipValue()) {
                        return bail();
                    }
                }
                if (!ps.consume('}'))
                    return bail();
                out->push_back(std::move(rec));
            } while (ps.peek(',') && ps.consume(','));
        }
        if (!ps.consume(']'))
            return bail();
    }
    if (!ps.consume('}'))
        return bail();
    return true;
}

/**
 * Key a record by its identity fields for baseline/candidate matching.
 * All present identity fields compose, so the multi-tenant workload
 * bench can distinguish (tenant, overload, policy) slices while the
 * single-field figure benches keep their "query=N" / "devices=M" keys.
 */
inline std::string
recordKey(const Record &r)
{
    std::string key;
    for (const char *id :
         {"query", "devices", "tenant", "overload", "fifo"}) {
        auto it = r.find(id);
        if (it == r.end())
            continue;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s%s=%g",
                      key.empty() ? "" : ",", id, it->second);
        key += buf;
    }
    return key;
}

struct DiffOptions
{
    double wallThresholdPct = 10.0;
    double modelTolerance = 0.0;
    double flashThresholdPct = 0.0;

    /** Emit every matched record's wall ratio (worst first) as notes,
     *  healthy or not — the gate only lists them on failure. */
    bool verbose = false;
};

struct DiffResult
{
    int failures = 0;
    int matched = 0;
    /// FAIL lines, one per violation; callers print them to stderr.
    std::vector<std::string> failureMessages;
    /// Informational lines (candidate-only records etc.).
    std::vector<std::string> notes;
    double wallGeomean = 1.0;
    int wallSamples = 0;
    double flashGeomean = 1.0;
    int flashSamples = 0;
    bool fatal = false; ///< no records matched at all
    std::string fatalMessage;
};

namespace detail {

inline std::string
formatMsg(const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof buf, fmt, ap);
    va_end(ap);
    return buf;
}

} // namespace detail

/**
 * Compare @p candidate against @p baseline. Fails when a modelled_*
 * field drifts beyond tolerance, when a baseline record key or
 * modelled field is missing from the candidate (named, with the side),
 * or when the wall / flash geomean gates trip. Candidate-only record
 * keys are reported as notes, not failures, so adding new bench
 * coverage never trips the gate.
 */
inline DiffResult
diffReports(const std::vector<Record> &baseline,
            const std::vector<Record> &candidate,
            const DiffOptions &opt)
{
    DiffResult res;

    std::map<std::string, const Record *> base_by_key;
    for (const Record &r : baseline) {
        std::string key = recordKey(r);
        if (!key.empty())
            base_by_key[key] = &r;
    }
    std::map<std::string, const Record *> cand_by_key;
    for (const Record &r : candidate) {
        std::string key = recordKey(r);
        if (!key.empty())
            cand_by_key[key] = &r;
    }

    // Records present on exactly one side: name the key and the side
    // it is missing from. Baseline coverage that disappeared is a
    // regression; candidate-only records are informational.
    for (const auto &[key, rec] : base_by_key) {
        if (cand_by_key.find(key) == cand_by_key.end()) {
            res.failureMessages.push_back(detail::formatMsg(
                "FAIL record '%s' missing from candidate report",
                key.c_str()));
            ++res.failures;
        }
    }
    for (const auto &[key, rec] : cand_by_key) {
        if (base_by_key.find(key) == base_by_key.end())
            res.notes.push_back(detail::formatMsg(
                "note: record '%s' missing from baseline report "
                "(new coverage)",
                key.c_str()));
    }

    double log_ratio_sum = 0.0;
    double flash_log_ratio_sum = 0.0;
    // (ratio, key, base, cand) per matched record, kept so a tripped
    // geomean gate can name the records that dragged it over the line.
    struct Sample
    {
        double ratio;
        std::string key;
        double base;
        double cand;
    };
    std::vector<Sample> wall_samples;
    std::vector<Sample> flash_samples;

    for (const auto &[key, candp] : cand_by_key) {
        auto bit = base_by_key.find(key);
        if (bit == base_by_key.end())
            continue;
        const Record &base = *bit->second;
        const Record &cand = *candp;
        ++res.matched;

        auto bw = base.find("wall_seconds");
        auto cw = cand.find("wall_seconds");
        if (bw != base.end() && cw != cand.end() && bw->second > 0.0
            && cw->second > 0.0) {
            log_ratio_sum += std::log(cw->second / bw->second);
            ++res.wallSamples;
            wall_samples.push_back(
                {cw->second / bw->second, key, bw->second, cw->second});
        }

        auto bf = base.find("flash_bytes");
        auto cf = cand.find("flash_bytes");
        if (bf != base.end() && cf != cand.end() && bf->second > 0.0
            && cf->second > 0.0) {
            flash_log_ratio_sum += std::log(cf->second / bf->second);
            ++res.flashSamples;
            flash_samples.push_back(
                {cf->second / bf->second, key, bf->second, cf->second});
        }

        for (const auto &[name, base_v] : base) {
            if (name.rfind("modelled_", 0) != 0)
                continue;
            auto cit = cand.find(name);
            if (cit == cand.end()) {
                res.failureMessages.push_back(detail::formatMsg(
                    "FAIL %s: field '%s' missing from candidate "
                    "report",
                    key.c_str(), name.c_str()));
                ++res.failures;
                continue;
            }
            double cand_v = cit->second;
            double denom = std::fabs(base_v) > 0.0
                ? std::fabs(base_v) : 1.0;
            double drift = std::fabs(cand_v - base_v) / denom;
            if (drift > opt.modelTolerance) {
                res.failureMessages.push_back(detail::formatMsg(
                    "FAIL %s: %s drifted %.17g -> %.17g "
                    "(rel %.3g > tol %.3g)",
                    key.c_str(), name.c_str(), base_v, cand_v, drift,
                    opt.modelTolerance));
                ++res.failures;
            }
        }
    }

    if (res.matched == 0) {
        res.fatal = true;
        res.fatalMessage = "no matching records between the reports";
        return res;
    }

    // When a geomean gate trips, list every matched record's ratio,
    // worst first, so the offending queries are identifiable without a
    // rerun.
    auto explain = [&res](const char *field,
                          std::vector<Sample> &samples) {
        std::sort(samples.begin(), samples.end(),
                  [](const Sample &a, const Sample &b) {
                      return a.ratio > b.ratio;
                  });
        for (const Sample &s : samples)
            res.failureMessages.push_back(detail::formatMsg(
                "  %s '%s' ratio %.4f (%.6g -> %.6g)", field,
                s.key.c_str(), s.ratio, s.base, s.cand));
    };

    res.wallGeomean = res.wallSamples > 0
        ? std::exp(log_ratio_sum / res.wallSamples) : 1.0;

    // --verbose: every matched record's wall ratio as a note, worst
    // first, whether or not the geomean gate trips (the gate itself
    // only names records on failure, as failure messages).
    if (opt.verbose) {
        std::vector<Sample> sorted = wall_samples;
        std::sort(sorted.begin(), sorted.end(),
                  [](const Sample &a, const Sample &b) {
                      return a.ratio > b.ratio;
                  });
        for (const Sample &s : sorted)
            res.notes.push_back(detail::formatMsg(
                "wall_seconds '%s' ratio %.4f (%.6g -> %.6g)",
                s.key.c_str(), s.ratio, s.base, s.cand));
    }

    double limit = 1.0 + opt.wallThresholdPct / 100.0;
    if (res.wallGeomean > limit) {
        res.failureMessages.push_back(detail::formatMsg(
            "FAIL wall_seconds geomean ratio %.4f exceeds limit %.4f",
            res.wallGeomean, limit));
        ++res.failures;
        explain("wall_seconds", wall_samples);
    }
    if (res.flashSamples > 0) {
        res.flashGeomean =
            std::exp(flash_log_ratio_sum / res.flashSamples);
        double flash_limit = 1.0 + opt.flashThresholdPct / 100.0;
        if (res.flashGeomean > flash_limit) {
            res.failureMessages.push_back(detail::formatMsg(
                "FAIL flash_bytes geomean ratio %.4f exceeds limit "
                "%.4f",
                res.flashGeomean, flash_limit));
            ++res.failures;
            explain("flash_bytes", flash_samples);
        }
    }
    return res;
}

} // namespace aquoman::tools

#endif // AQUOMAN_TOOLS_BENCH_DIFF_CORE_HH
