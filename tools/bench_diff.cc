/**
 * @file
 * Bench regression gate: compares two BENCH_*.json reports produced by
 * the figure benches (writeJsonReport format) and exits non-zero when
 * the candidate regresses against the baseline.
 *
 * Two families of checks, per record pair matched on the "query" (or
 * "devices") field:
 *
 *  - wall_seconds: real time, inherently noisy. The gate is the
 *    geometric mean of candidate/baseline ratios over all matched
 *    records; it fails when the geomean exceeds 1 + threshold
 *    (--wall-threshold-pct, default 10).
 *
 *  - modelled_* fields: machine-independent simulator output that must
 *    be bit-stable. Any relative drift beyond --model-tolerance
 *    (default 0, exact) on any matched record fails the gate.
 *
 *  - flash_bytes: modelled bytes streamed off flash (deterministic).
 *    The gate is the geometric mean of candidate/baseline ratios over
 *    records carrying the field on both sides; it fails when the
 *    geomean exceeds 1 + threshold (--flash-bytes-threshold-pct,
 *    default 0 — any net bytes-read regression fails). Baselines
 *    predating the field simply contribute no samples.
 *
 * Usage:
 *   bench_diff <baseline.json> <candidate.json>
 *              [--wall-threshold-pct P] [--model-tolerance T]
 *              [--flash-bytes-threshold-pct P]
 *
 * Exit codes: 0 pass, 1 regression detected, 2 usage / parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal recursive-descent JSON reader: just enough for the bench
// reports (objects, arrays, numbers, strings, literals). Values other
// than top-level-record numeric fields are parsed and discarded.
// ---------------------------------------------------------------------

struct Parser
{
    const char *p;
    const char *end;
    std::string error;

    explicit Parser(const std::string &text)
        : p(text.data()), end(text.data() + text.size())
    {
    }

    bool
    fail(const std::string &what)
    {
        if (error.empty())
            error = what;
        return false;
    }

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n'
                           || *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return fail(std::string("expected '") + c + "'");
    }

    bool
    peek(char c)
    {
        skipWs();
        return p < end && *p == c;
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return false;
        std::string s;
        while (p < end && *p != '"') {
            char c = *p++;
            if (c == '\\' && p < end) {
                char e = *p++;
                switch (e) {
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  case 'u':
                    // Keep the escape verbatim; field names the diff
                    // cares about never use \u.
                    s += "\\u";
                    break;
                  default: s += e; break;
                }
            } else {
                s += c;
            }
        }
        if (p >= end)
            return fail("unterminated string");
        ++p;
        if (out)
            *out = std::move(s);
        return true;
    }

    bool
    parseNumber(double *out)
    {
        skipWs();
        char *num_end = nullptr;
        double v = std::strtod(p, &num_end);
        if (num_end == p)
            return fail("expected number");
        p = num_end;
        if (out)
            *out = v;
        return true;
    }

    /** Parse and discard any JSON value. */
    bool
    skipValue()
    {
        skipWs();
        if (p >= end)
            return fail("unexpected end of input");
        switch (*p) {
          case '{': {
            ++p;
            if (peek('}'))
                return consume('}');
            do {
                if (!parseString(nullptr) || !consume(':')
                    || !skipValue())
                    return false;
            } while (peek(',') && consume(','));
            return consume('}');
          }
          case '[': {
            ++p;
            if (peek(']'))
                return consume(']');
            do {
                if (!skipValue())
                    return false;
            } while (peek(',') && consume(','));
            return consume(']');
          }
          case '"':
            return parseString(nullptr);
          case 't':
          case 'f':
          case 'n': {
            const char *lits[] = {"true", "false", "null"};
            for (const char *lit : lits) {
                auto len = static_cast<std::ptrdiff_t>(std::strlen(lit));
                if (end - p >= len && std::strncmp(p, lit, len) == 0) {
                    p += len;
                    return true;
                }
            }
            return fail("bad literal");
          }
          default:
            return parseNumber(nullptr);
        }
    }
};

/** Numeric fields of one record; non-numeric members are dropped. */
using Record = std::map<std::string, double>;

/**
 * Parse a writeJsonReport file: {"records": [{...}, ...], ...}. Only
 * the records array is retained.
 */
bool
parseReport(const std::string &path, std::vector<Record> *out,
            std::string *error)
{
    std::ifstream f(path);
    if (!f) {
        *error = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    std::string text = buf.str();

    Parser ps(text);
    if (!ps.consume('{')) {
        *error = path + ": " + ps.error;
        return false;
    }
    bool first = true;
    while (first || (ps.peek(',') && ps.consume(','))) {
        first = false;
        std::string key;
        if (!ps.parseString(&key) || !ps.consume(':')) {
            *error = path + ": " + ps.error;
            return false;
        }
        if (key != "records") {
            if (!ps.skipValue()) {
                *error = path + ": " + ps.error;
                return false;
            }
            continue;
        }
        if (!ps.consume('[')) {
            *error = path + ": " + ps.error;
            return false;
        }
        if (!ps.peek(']')) {
            do {
                Record rec;
                if (!ps.consume('{')) {
                    *error = path + ": " + ps.error;
                    return false;
                }
                bool rec_first = true;
                while (rec_first || (ps.peek(',') && ps.consume(','))) {
                    rec_first = false;
                    std::string name;
                    if (!ps.parseString(&name) || !ps.consume(':')) {
                        *error = path + ": " + ps.error;
                        return false;
                    }
                    ps.skipWs();
                    if (ps.p < ps.end
                        && (*ps.p == '-' || (*ps.p >= '0' && *ps.p <= '9'))) {
                        double v = 0.0;
                        if (!ps.parseNumber(&v)) {
                            *error = path + ": " + ps.error;
                            return false;
                        }
                        rec[name] = v;
                    } else if (!ps.skipValue()) {
                        *error = path + ": " + ps.error;
                        return false;
                    }
                }
                if (!ps.consume('}')) {
                    *error = path + ": " + ps.error;
                    return false;
                }
                out->push_back(std::move(rec));
            } while (ps.peek(',') && ps.consume(','));
        }
        if (!ps.consume(']')) {
            *error = path + ": " + ps.error;
            return false;
        }
    }
    if (!ps.consume('}')) {
        *error = path + ": " + ps.error;
        return false;
    }
    return true;
}

/**
 * Key a record by its identity fields for baseline/candidate matching.
 * All present identity fields compose, so the multi-tenant workload
 * bench can distinguish (tenant, overload, policy) slices while the
 * single-field figure benches keep their "query=N" / "devices=M" keys.
 */
std::string
recordKey(const Record &r)
{
    std::string key;
    for (const char *id :
         {"query", "devices", "tenant", "overload", "fifo"}) {
        auto it = r.find(id);
        if (it == r.end())
            continue;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%s%s=%g",
                      key.empty() ? "" : ",", id, it->second);
        key += buf;
    }
    return key;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_diff <baseline.json> <candidate.json>\n"
        "                  [--wall-threshold-pct P] "
        "[--model-tolerance T]\n"
        "                  [--flash-bytes-threshold-pct P]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, candidate_path;
    double wall_threshold_pct = 10.0;
    double model_tolerance = 0.0;
    double flash_threshold_pct = 0.0;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--wall-threshold-pct" && i + 1 < argc) {
            wall_threshold_pct = std::atof(argv[++i]);
        } else if (a == "--model-tolerance" && i + 1 < argc) {
            model_tolerance = std::atof(argv[++i]);
        } else if (a == "--flash-bytes-threshold-pct" && i + 1 < argc) {
            flash_threshold_pct = std::atof(argv[++i]);
        } else if (baseline_path.empty()) {
            baseline_path = a;
        } else if (candidate_path.empty()) {
            candidate_path = a;
        } else {
            return usage();
        }
    }
    if (baseline_path.empty() || candidate_path.empty())
        return usage();

    std::vector<Record> baseline, candidate;
    std::string error;
    if (!parseReport(baseline_path, &baseline, &error)
        || !parseReport(candidate_path, &candidate, &error)) {
        std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
        return 2;
    }

    std::map<std::string, const Record *> base_by_key;
    for (const Record &r : baseline) {
        std::string key = recordKey(r);
        if (!key.empty())
            base_by_key[key] = &r;
    }

    int failures = 0;
    int matched = 0;
    double log_ratio_sum = 0.0;
    int wall_samples = 0;
    double flash_log_ratio_sum = 0.0;
    int flash_samples = 0;

    for (const Record &cand : candidate) {
        std::string key = recordKey(cand);
        auto bit = base_by_key.find(key);
        if (key.empty() || bit == base_by_key.end())
            continue;
        const Record &base = *bit->second;
        ++matched;

        auto bw = base.find("wall_seconds");
        auto cw = cand.find("wall_seconds");
        if (bw != base.end() && cw != cand.end() && bw->second > 0.0
            && cw->second > 0.0) {
            log_ratio_sum += std::log(cw->second / bw->second);
            ++wall_samples;
        }

        auto bf = base.find("flash_bytes");
        auto cf = cand.find("flash_bytes");
        if (bf != base.end() && cf != cand.end() && bf->second > 0.0
            && cf->second > 0.0) {
            flash_log_ratio_sum += std::log(cf->second / bf->second);
            ++flash_samples;
        }

        for (const auto &[name, base_v] : base) {
            if (name.rfind("modelled_", 0) != 0)
                continue;
            auto cit = cand.find(name);
            if (cit == cand.end()) {
                std::fprintf(stderr,
                             "FAIL %s: %s missing from candidate\n",
                             key.c_str(), name.c_str());
                ++failures;
                continue;
            }
            double cand_v = cit->second;
            double denom = std::fabs(base_v) > 0.0
                ? std::fabs(base_v) : 1.0;
            double drift = std::fabs(cand_v - base_v) / denom;
            if (drift > model_tolerance) {
                std::fprintf(stderr,
                             "FAIL %s: %s drifted %.17g -> %.17g "
                             "(rel %.3g > tol %.3g)\n",
                             key.c_str(), name.c_str(), base_v, cand_v,
                             drift, model_tolerance);
                ++failures;
            }
        }
    }

    if (matched == 0) {
        std::fprintf(stderr,
                     "bench_diff: no matching records between %s and "
                     "%s\n",
                     baseline_path.c_str(), candidate_path.c_str());
        return 2;
    }

    double geomean = wall_samples > 0
        ? std::exp(log_ratio_sum / wall_samples) : 1.0;
    double limit = 1.0 + wall_threshold_pct / 100.0;
    std::printf("bench_diff: %d record(s) matched, wall geomean ratio "
                "%.4f (limit %.4f), modelled failures %d\n",
                matched, geomean, limit, failures);
    if (geomean > limit) {
        std::fprintf(stderr,
                     "FAIL wall_seconds geomean ratio %.4f exceeds "
                     "limit %.4f\n",
                     geomean, limit);
        ++failures;
    }
    if (flash_samples > 0) {
        double flash_geomean =
            std::exp(flash_log_ratio_sum / flash_samples);
        double flash_limit = 1.0 + flash_threshold_pct / 100.0;
        std::printf("bench_diff: flash_bytes geomean ratio %.4f over "
                    "%d record(s) (limit %.4f)\n",
                    flash_geomean, flash_samples, flash_limit);
        if (flash_geomean > flash_limit) {
            std::fprintf(stderr,
                         "FAIL flash_bytes geomean ratio %.4f exceeds "
                         "limit %.4f\n",
                         flash_geomean, flash_limit);
            ++failures;
        }
    }
    return failures > 0 ? 1 : 0;
}
