/**
 * @file
 * Bench regression gate: compares two BENCH_*.json reports produced by
 * the figure benches (writeJsonReport format) and exits non-zero when
 * the candidate regresses against the baseline.
 *
 * Checks, per record pair matched on the composed identity key
 * (query / devices / tenant / overload / fifo):
 *
 *  - wall_seconds: real time, inherently noisy. The gate is the
 *    geometric mean of candidate/baseline ratios over all matched
 *    records; it fails when the geomean exceeds 1 + threshold
 *    (--wall-threshold-pct, default 10).
 *
 *  - modelled_* fields: machine-independent simulator output that must
 *    be bit-stable. Any relative drift beyond --model-tolerance
 *    (default 0, exact) on any matched record fails the gate.
 *
 *  - flash_bytes: modelled bytes streamed off flash (deterministic).
 *    The gate is the geometric mean of candidate/baseline ratios over
 *    records carrying the field on both sides; it fails when the
 *    geomean exceeds 1 + threshold (--flash-bytes-threshold-pct,
 *    default 0 — any net bytes-read regression fails). Baselines
 *    predating the field simply contribute no samples.
 *
 *  - record coverage: a baseline record key with no candidate match
 *    fails the gate, naming the key and the side it is missing from.
 *    Candidate-only keys are reported as informational notes.
 *
 * The matching and gating logic lives in bench_diff_core.hh so it is
 * unit-testable; this file is only the CLI.
 *
 * Usage:
 *   bench_diff <baseline.json> <candidate.json>
 *              [--wall-threshold-pct P] [--model-tolerance T]
 *              [--flash-bytes-threshold-pct P] [--verbose]
 *
 * --verbose additionally prints every matched record's wall ratio
 * (worst first) even when the gate passes.
 *

 * Exit codes: 0 pass, 1 regression detected, 2 usage / parse error.
 */

#include "bench_diff_core.hh"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace aquoman::tools;

namespace {

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_diff <baseline.json> <candidate.json>\n"
        "                  [--wall-threshold-pct P] "
        "[--model-tolerance T]\n"
        "                  [--flash-bytes-threshold-pct P] "
        "[--verbose]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string baseline_path, candidate_path;
    DiffOptions opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--wall-threshold-pct" && i + 1 < argc) {
            opt.wallThresholdPct = std::atof(argv[++i]);
        } else if (a == "--model-tolerance" && i + 1 < argc) {
            opt.modelTolerance = std::atof(argv[++i]);
        } else if (a == "--flash-bytes-threshold-pct" && i + 1 < argc) {
            opt.flashThresholdPct = std::atof(argv[++i]);
        } else if (a == "--verbose") {
            opt.verbose = true;
        } else if (baseline_path.empty()) {
            baseline_path = a;
        } else if (candidate_path.empty()) {
            candidate_path = a;
        } else {
            return usage();
        }
    }
    if (baseline_path.empty() || candidate_path.empty())
        return usage();

    std::vector<Record> baseline, candidate;
    std::string error;
    if (!parseReport(baseline_path, &baseline, &error)
        || !parseReport(candidate_path, &candidate, &error)) {
        std::fprintf(stderr, "bench_diff: %s\n", error.c_str());
        return 2;
    }

    DiffResult res = diffReports(baseline, candidate, opt);
    if (res.fatal) {
        std::fprintf(stderr, "bench_diff: %s (%s vs %s)\n",
                     res.fatalMessage.c_str(), baseline_path.c_str(),
                     candidate_path.c_str());
        return 2;
    }

    for (const std::string &note : res.notes)
        std::printf("bench_diff: %s\n", note.c_str());
    for (const std::string &msg : res.failureMessages)
        std::fprintf(stderr, "%s\n", msg.c_str());

    std::printf("bench_diff: %d record(s) matched, wall geomean ratio "
                "%.4f (limit %.4f), failures %d\n",
                res.matched, res.wallGeomean,
                1.0 + opt.wallThresholdPct / 100.0, res.failures);
    if (res.flashSamples > 0)
        std::printf("bench_diff: flash_bytes geomean ratio %.4f over "
                    "%d record(s) (limit %.4f)\n",
                    res.flashGeomean, res.flashSamples,
                    1.0 + opt.flashThresholdPct / 100.0);
    return res.failures > 0 ? 1 : 0;
}
