/**
 * @file
 * Service-layer demo: a QueryService with a 4-SSD array serves 8
 * concurrent TPC-H queries. Tables are row-striped across the array,
 * admission control caps concurrency, and the Table-Task scheduler
 * interleaves queries across devices; one query is given a deliberately
 * tiny DRAM reservation elsewhere in the suite to show suspension, but
 * here the lifecycle log itself is the star: watch each query move
 * Queued -> Running -> HostFinish -> Done in modelled time.
 *
 * Build & run:  ./examples/service_demo
 */

#include <cstdio>

#include "service/query_service.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

using namespace aquoman;
using namespace aquoman::service;

int
main()
{
    const double sf = 0.01;
    std::printf("generating TPC-H at SF %.2f...\n", sf);
    tpch::TpchDatabase db =
        tpch::TpchDatabase::generate(tpch::TpchConfig{sf, 19920101});

    ServiceConfig cfg;
    cfg.numDevices = 4;
    cfg.admissionLimit = 8;
    QueryService svc(cfg);
    for (const auto &t : {db.region, db.nation, db.supplier, db.customer,
                          db.part, db.partsupp, db.orders, db.lineitem})
        svc.addTable(t);
    db.registerMetadata(svc.catalog());

    const int queries[] = {1, 3, 6, 12, 13, 14, 19, 4};
    std::vector<QueryId> ids;
    for (int q : queries)
        ids.push_back(svc.submit(tpch::tpchQuery(q, sf)));
    std::printf("submitted %zu queries to a %d-device service "
                "(admission limit %d)\n\n",
                ids.size(), cfg.numDevices, cfg.admissionLimit);
    svc.drain();

    for (QueryId id : ids) {
        const QueryRecord &rec = svc.record(id);
        std::printf("%s  anchor=ssd%d  rows=%lld  latency=%.6fs  "
                    "queue-wait=%.6fs  device=%.6fs  host=%.6fs  "
                    "suspends=%lld\n",
                    rec.name.c_str(), rec.anchorDevice,
                    static_cast<long long>(rec.result.numRows()),
                    rec.latencySec(), rec.queueWaitSec,
                    rec.deviceBusySec, rec.hostFinishSec,
                    static_cast<long long>(rec.suspendCount));
        for (const std::string &line : rec.formatLifecycle())
            std::printf("    %s\n", line.c_str());
    }

    ServiceStats agg = svc.aggregate();
    std::printf("\n%lld queries done in %.6fs modelled "
                "(%.1f q/s); p95 latency %.6fs\n",
                static_cast<long long>(agg.completed), agg.makespanSec,
                agg.throughputQps, agg.p95LatencySec);
    for (std::size_t d = 0; d < agg.deviceBusySec.size(); ++d) {
        std::printf("  ssd%zu: %lld subtasks, busy %.6fs, aquoman "
                    "reads %lld bytes\n",
                    d, static_cast<long long>(agg.deviceTasksRun[d]),
                    agg.deviceBusySec[d],
                    static_cast<long long>(
                        svc.deviceSwitch(static_cast<int>(d))
                            .bytesRead(FlashPort::Aquoman)));
    }
    return 0;
}
