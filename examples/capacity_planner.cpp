/**
 * @file
 * Capacity planner: the paper's headline trade-off as a what-if tool.
 * Sweeps host sizes (threads x DRAM) with and without AQUOMAN SSDs
 * over the TPC-H mix and prints the equivalence frontier — e.g. that a
 * 4-core/16GB host with AQUOMAN matches a 32-core/128GB host with
 * plain SSDs (Sec. VIII-C).
 */

#include <cstdio>
#include <vector>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

using namespace aquoman;

int
main(int argc, char **argv)
{
    double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
    tpch::TpchConfig cfg;
    cfg.scaleFactor = sf;
    auto db = tpch::TpchDatabase::generate(cfg);
    FlashConfig fc;
    fc.capacityBytes = 32ll << 30;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);
    Catalog catalog;
    db.installInto(catalog, store);

    // Machine-independent traces, one pass per path.
    std::vector<EngineMetrics> base;
    std::vector<AquomanRunStats> aq;
    for (int q : tpch::allQueryNumbers()) {
        Executor ex(catalog, &sw);
        ex.run(tpch::tpchQuery(q, sf));
        base.push_back(ex.metrics());
        AquomanDevice device(catalog, sw, AquomanConfig::paper40());
        aq.push_back(device.runQuery(tpch::tpchQuery(q, sf)).stats);
    }

    struct HostSize { int threads; std::int64_t dram_gb; };
    std::vector<HostSize> sizes = {{2, 8},   {4, 16}, {8, 32},
                                   {16, 64}, {32, 128}};

    std::printf("TPC-H mix total runtime (s, functional scale SF "
                "%.3f)\n\n", sf);
    std::printf("%-18s %14s %16s\n", "host", "plain SSDs",
                "AQUOMAN SSDs");
    double plain_large = 0.0;
    std::vector<double> aq_totals;
    for (const auto &hs : sizes) {
        HostConfig hc;
        hc.name = std::to_string(hs.threads) + "c/"
            + std::to_string(hs.dram_gb) + "GB";
        hc.hardwareThreads = hs.threads;
        hc.dramBytes = hs.dram_gb << 30;
        HostModel model(hc);
        double plain = 0.0, offl = 0.0;
        for (std::size_t i = 0; i < base.size(); ++i) {
            plain += model.estimate(base[i]).runtime;
            offl += evaluateOffload(base[i], aq[i], model)
                        .offloadRuntime;
        }
        std::printf("%-18s %14.2f %16.2f\n", hc.name.c_str(), plain,
                    offl);
        if (hs.threads == 32)
            plain_large = plain;
        aq_totals.push_back(offl);
    }

    std::printf("\nheadline check (Sec. VIII-C): the smallest "
                "AQUOMAN-augmented host that matches the 32c/128GB "
                "plain-SSD host:\n");
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        if (aq_totals[i] <= plain_large * 1.1) {
            std::printf("  -> %dc/%lldGB with AQUOMAN (%.2fs) ~ "
                        "32c/128GB plain (%.2fs)\n",
                        sizes[i].threads,
                        static_cast<long long>(sizes[i].dram_gb),
                        aq_totals[i], plain_large);
            break;
        }
    }
    return 0;
}
