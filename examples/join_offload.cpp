/**
 * @file
 * The paper's Fig. 4/5 join example: total shoe sales after a date,
 * computed as an in-storage two-table join.
 *
 *   SELECT sum(price) AS shoe_sales
 *   FROM inventory ti, sales_transactions ts
 *   WHERE ti.invtID = ts.invtID
 *     AND ti.category = 'Shoes'
 *     AND ts.saledate > '2018-03-15';
 *
 * Shows the Table-Task decomposition the device derives (Fig. 5) and
 * how the join runs through the RowID-probe / merger machinery.
 */

#include <cstdio>
#include <memory>

#include "aquoman/device.hh"
#include "common/rng.hh"

using namespace aquoman;

int
main()
{
    FlashConfig fc;
    fc.capacityBytes = 1ll << 30;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);
    Catalog catalog;

    // inventory: items with categories; invtID is a dense primary key,
    // which lets AQUOMAN use the materialised-RowID join optimisation.
    auto inventory = std::make_shared<Table>("inventory");
    {
        auto &ik = inventory->addColumn("invtID", ColumnType::Int64);
        auto &cat = inventory->addColumn("category",
                                         ColumnType::Varchar);
        auto &name = inventory->addColumn("productname",
                                          ColumnType::Varchar);
        const char *cats[] = {"Shoes", "Hats", "Coats", "Socks"};
        Rng rng(1);
        for (int i = 1; i <= 5000; ++i) {
            ik.push(i);
            inventory->pushString(cat, cats[rng.uniform(0, 3)]);
            inventory->pushString(name,
                                  "item-" + std::to_string(i));
        }
        ik.setSorted(true);
    }

    auto sales = std::make_shared<Table>("sales_transactions");
    {
        auto &tid = sales->addColumn("transactionID", ColumnType::Int64);
        auto &item = sales->addColumn("invtID", ColumnType::Int64);
        auto &sdate = sales->addColumn("saledate", ColumnType::Date);
        auto &price = sales->addColumn("price", ColumnType::Decimal);
        Rng rng(2);
        for (int i = 0; i < 200000; ++i) {
            tid.push(i);
            item.push(rng.uniform(1, 5000));
            sdate.push(parseDate("2018-01-01")
                       + static_cast<std::int32_t>(rng.uniform(0, 364)));
            price.push(rng.uniform(500, 20000));
        }
        tid.setSorted(true);
    }

    catalog.put(inventory, store.store(inventory));
    catalog.get("inventory").densePrimaryKey = "invtID";
    catalog.put(sales, store.store(sales));
    catalog.get("sales_transactions").densePrimaryKey = "transactionID";
    catalog.get("sales_transactions").fkRowIdTargets["invtID"] =
        "inventory";

    auto plan = groupBy(
        join(JoinType::Inner,
             filter(scan("sales_transactions",
                         "", {"invtID", "saledate", "price"}),
                    gt(col("saledate"), litDate("2018-03-15"))),
             filter(scan("inventory", "ti", {"invtID", "category"}),
                    eq(col("ti.category"), litStr("Shoes"))),
             {"invtID"}, {"ti.invtID"}),
        {}, {{"shoe_sales", AggKind::Sum, col("price")}});
    Query query{"fig4_join", {{"out", plan}}};

    Executor engine(catalog, &sw);
    RelTable base = engine.run(query);

    AquomanDevice device(catalog, sw, AquomanConfig::paper40());
    OffloadedQueryResult off = device.runQuery(query);

    std::printf("shoe_sales (baseline): %s\n",
                decimalToString(base.col("shoe_sales").get(0)).c_str());
    std::printf("shoe_sales (AQUOMAN):  %s\n",
                decimalToString(off.result.col("shoe_sales").get(0))
                    .c_str());

    std::printf("\nTable-Task program (compare with the paper's "
                "Fig. 5):\n");
    for (const auto &line : off.stats.taskLog)
        std::printf("  %s\n", line.c_str());

    std::printf("\ndevice DRAM peak: %.1f KB (row masks + RowIDs "
                "only); flash streamed: %.1f MB\n",
                off.stats.deviceDramPeak / 1024.0,
                off.stats.deviceFlashBytes / 1e6);
    bool same = base.col("shoe_sales").get(0)
        == off.result.col("shoe_sales").get(0);
    return same ? 0 : 1;
}
