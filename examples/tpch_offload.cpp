/**
 * @file
 * TPC-H demo: generates the benchmark database at a small scale factor
 * (argv[1], default 0.01), loads it onto the simulated AQUOMAN SSD and
 * runs a chosen query (argv[2], default 5) through both execution
 * paths, printing the answer, the offload decision and the performance
 * trace. Run e.g.
 *
 *     ./tpch_offload 0.02 17
 *
 * to watch a suspended query split between device and host.
 */

#include <cstdio>
#include <cstdlib>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "tpch/dbgen.hh"
#include "tpch/queries.hh"

using namespace aquoman;

int
main(int argc, char **argv)
{
    double sf = argc > 1 ? std::atof(argv[1]) : 0.01;
    int qnum = argc > 2 ? std::atoi(argv[2]) : 5;

    std::printf("generating TPC-H SF %.3f ...\n", sf);
    tpch::TpchConfig cfg;
    cfg.scaleFactor = sf;
    auto db = tpch::TpchDatabase::generate(cfg);

    FlashConfig fc;
    fc.capacityBytes = 32ll << 30;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);
    Catalog catalog;
    db.installInto(catalog, store);
    std::printf("loaded %.1f MB of column files onto flash\n",
                db.storedBytes() / 1e6);

    Query query = tpch::tpchQuery(qnum, sf);
    std::printf("\nquery plan:\n%s\n", queryToString(query).c_str());

    Executor engine(catalog, &sw);
    RelTable base = engine.run(query);

    AquomanDevice device(catalog, sw, AquomanConfig::paper40());
    OffloadedQueryResult off = device.runQuery(query);

    std::printf("answer (%lld row(s), first 5 shown):\n",
                static_cast<long long>(off.result.numRows()));
    for (std::int64_t r = 0; r < std::min<std::int64_t>(5,
             off.result.numRows()); ++r) {
        std::printf("  ");
        for (int c = 0; c < off.result.numColumns(); ++c) {
            const RelColumn &col = off.result.col(c);
            if (col.type == ColumnType::Varchar)
                std::printf("%s ", std::string(col.str(r)).c_str());
            else if (col.type == ColumnType::Decimal)
                std::printf("%s ", decimalToString(col.get(r)).c_str());
            else
                std::printf("%lld ",
                            static_cast<long long>(col.get(r)));
        }
        std::printf("\n");
    }
    std::printf("baseline row count matches: %s\n",
                base.numRows() == off.result.numRows() ? "yes" : "NO");

    std::printf("\noffload decision per stage:\n");
    for (const auto &s : off.stats.deviceStages)
        std::printf("  [device] %s\n", s.c_str());
    for (const auto &[s, why] : off.stats.hostStages)
        std::printf("  [host]   %s  (%s)\n", s.c_str(), why.c_str());

    std::printf("\nTable-Task log:\n");
    for (const auto &line : off.stats.taskLog)
        std::printf("  %s\n", line.c_str());

    HostModel host(HostConfig::large());
    SystemEvaluation ev = evaluateOffload(engine.metrics(), off.stats,
                                          host);
    std::printf("\nsystem model (host L): baseline %.3fs, offloaded "
                "%.3fs (%.0f%% on device), CPU saving %.0f%%, class "
                "%s\n",
                ev.baseline.runtime, ev.offloadRuntime,
                100.0 * ev.offloadFraction, 100.0 * ev.cpuSaving,
                offloadClassName(ev.offloadClass));
    return 0;
}
