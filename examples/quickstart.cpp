/**
 * @file
 * Quickstart: the paper's Fig. 1 running example end to end.
 *
 * Builds a small sales database, loads it onto the simulated flash
 * device, runs the aggregate query
 *
 *   SELECT department,
 *          sum(price*(1-discount))         AS netsale,
 *          sum(price*(1-discount)*(1+tax)) AS revenue
 *   FROM sales_transactions
 *   WHERE saledate <= '2018-12-01'
 *   GROUP BY department;
 *
 * on the software baseline and on the AQUOMAN device, and shows that
 * the answers agree while the device does the work in-storage.
 */

#include <cstdio>
#include <memory>

#include "aquoman/device.hh"
#include "aquoman/perf_model.hh"
#include "common/rng.hh"

using namespace aquoman;

namespace {

std::shared_ptr<Table>
makeSalesTable()
{
    auto t = std::make_shared<Table>("sales_transactions");
    auto &tid = t->addColumn("transactionID", ColumnType::Int64);
    auto &dept = t->addColumn("department", ColumnType::Varchar);
    auto &sdate = t->addColumn("saledate", ColumnType::Date);
    auto &price = t->addColumn("price", ColumnType::Decimal);
    auto &disc = t->addColumn("discount", ColumnType::Decimal);
    auto &tax = t->addColumn("tax", ColumnType::Decimal);
    const char *departments[] = {"toys", "garden", "electronics",
                                 "books"};
    Rng rng(2018);
    for (int i = 0; i < 50000; ++i) {
        tid.push(i);
        t->pushString(dept, departments[rng.uniform(0, 3)]);
        sdate.push(parseDate("2018-01-01")
                   + static_cast<std::int32_t>(rng.uniform(0, 420)));
        price.push(rng.uniform(100, 50000));   // 1.00 .. 500.00
        disc.push(rng.uniform(0, 10));
        tax.push(rng.uniform(0, 8));
    }
    return t;
}

} // namespace

int
main()
{
    // 1. A simulated 1GB flash device with its controller switch.
    FlashConfig fc;
    fc.capacityBytes = 1ll << 30;
    FlashDevice flash(fc);
    ControllerSwitch sw(flash);
    TableStore store(sw);

    // 2. Load the database onto flash and register it.
    Catalog catalog;
    auto sales = makeSalesTable();
    catalog.put(sales, store.store(sales));
    catalog.get("sales_transactions").densePrimaryKey = "transactionID";

    // 3. Express the query as a plan (Fig. 1's dataflow).
    auto netsale = mul(col("price"), sub(litDec("1.00"),
                                         col("discount")));
    auto plan = orderBy(
        groupBy(project(filter(scan("sales_transactions"),
                               le(col("saledate"),
                                  litDate("2018-12-01"))),
                        {{"department", col("department")},
                         {"netsale_in", netsale},
                         {"revenue_in",
                          mul(netsale, add(litDec("1.00"),
                                           col("tax")))}}),
                {"department"},
                {{"netsale", AggKind::Sum, col("netsale_in")},
                 {"revenue", AggKind::Sum, col("revenue_in")}}),
        {{"department", false}});
    Query query{"fig1_aggregate", {{"out", plan}}};

    // 4. Baseline: the software engine (the "MonetDB" role).
    Executor engine(catalog, &sw);
    RelTable base = engine.run(query);

    // 5. Offloaded: the AQUOMAN device executes Table Tasks in-storage.
    AquomanDevice device(catalog, sw, AquomanConfig::paper40());
    OffloadedQueryResult off = device.runQuery(query);

    std::printf("department      netsale        revenue\n");
    for (std::int64_t r = 0; r < off.result.numRows(); ++r) {
        std::printf("%-12s %10s %14s\n",
                    std::string(off.result.col("department").str(r))
                        .c_str(),
                    decimalToString(off.result.col("netsale").get(r))
                        .c_str(),
                    decimalToString(off.result.col("revenue").get(r))
                        .c_str());
    }

    bool same = base.numRows() == off.result.numRows();
    for (std::int64_t r = 0; same && r < base.numRows(); ++r)
        same = base.col("netsale").get(r)
            == off.result.col("netsale").get(r);
    std::printf("\nbaseline and AQUOMAN answers agree: %s\n",
                same ? "yes" : "NO");

    std::printf("\nWhat the device did:\n");
    for (const auto &line : off.stats.taskLog)
        std::printf("  %s\n", line.c_str());
    std::printf("\ndevice flash traffic: %.1f MB; host residual work: "
                "%.0f row-ops (just the final sort)\n",
                off.stats.deviceFlashBytes / 1e6,
                off.stats.hostResidual.rowOps);
    return same ? 0 : 1;
}
