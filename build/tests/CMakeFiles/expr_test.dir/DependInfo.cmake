
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/relalg/expr_test.cc" "tests/CMakeFiles/expr_test.dir/relalg/expr_test.cc.o" "gcc" "tests/CMakeFiles/expr_test.dir/relalg/expr_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relalg/CMakeFiles/aq_relalg.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/aq_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/aq_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/aquoman/CMakeFiles/aq_aquoman.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
