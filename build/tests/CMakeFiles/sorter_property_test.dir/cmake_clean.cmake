file(REMOVE_RECURSE
  "CMakeFiles/sorter_property_test.dir/aquoman/sorter_property_test.cc.o"
  "CMakeFiles/sorter_property_test.dir/aquoman/sorter_property_test.cc.o.d"
  "sorter_property_test"
  "sorter_property_test.pdb"
  "sorter_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorter_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
