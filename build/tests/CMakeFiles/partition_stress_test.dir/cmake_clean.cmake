file(REMOVE_RECURSE
  "CMakeFiles/partition_stress_test.dir/aquoman/partition_stress_test.cc.o"
  "CMakeFiles/partition_stress_test.dir/aquoman/partition_stress_test.cc.o.d"
  "partition_stress_test"
  "partition_stress_test.pdb"
  "partition_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
