file(REMOVE_RECURSE
  "CMakeFiles/swissknife_test.dir/aquoman/swissknife_test.cc.o"
  "CMakeFiles/swissknife_test.dir/aquoman/swissknife_test.cc.o.d"
  "swissknife_test"
  "swissknife_test.pdb"
  "swissknife_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swissknife_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
