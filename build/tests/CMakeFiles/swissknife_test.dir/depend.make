# Empty dependencies file for swissknife_test.
# This may be replaced when dependencies are built.
