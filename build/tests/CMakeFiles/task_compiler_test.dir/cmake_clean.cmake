file(REMOVE_RECURSE
  "CMakeFiles/task_compiler_test.dir/aquoman/task_compiler_test.cc.o"
  "CMakeFiles/task_compiler_test.dir/aquoman/task_compiler_test.cc.o.d"
  "task_compiler_test"
  "task_compiler_test.pdb"
  "task_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
