# Empty compiler generated dependencies file for task_compiler_test.
# This may be replaced when dependencies are built.
