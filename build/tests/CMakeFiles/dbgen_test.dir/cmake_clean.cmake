file(REMOVE_RECURSE
  "CMakeFiles/dbgen_test.dir/tpch/dbgen_test.cc.o"
  "CMakeFiles/dbgen_test.dir/tpch/dbgen_test.cc.o.d"
  "dbgen_test"
  "dbgen_test.pdb"
  "dbgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
