# Empty dependencies file for reference_answers_test.
# This may be replaced when dependencies are built.
