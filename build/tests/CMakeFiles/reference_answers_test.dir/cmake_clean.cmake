file(REMOVE_RECURSE
  "CMakeFiles/reference_answers_test.dir/tpch/reference_answers_test.cc.o"
  "CMakeFiles/reference_answers_test.dir/tpch/reference_answers_test.cc.o.d"
  "reference_answers_test"
  "reference_answers_test.pdb"
  "reference_answers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reference_answers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
