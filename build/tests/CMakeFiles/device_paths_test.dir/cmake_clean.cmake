file(REMOVE_RECURSE
  "CMakeFiles/device_paths_test.dir/aquoman/device_paths_test.cc.o"
  "CMakeFiles/device_paths_test.dir/aquoman/device_paths_test.cc.o.d"
  "device_paths_test"
  "device_paths_test.pdb"
  "device_paths_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
