# Empty dependencies file for device_paths_test.
# This may be replaced when dependencies are built.
