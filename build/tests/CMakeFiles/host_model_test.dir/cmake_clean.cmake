file(REMOVE_RECURSE
  "CMakeFiles/host_model_test.dir/engine/host_model_test.cc.o"
  "CMakeFiles/host_model_test.dir/engine/host_model_test.cc.o.d"
  "host_model_test"
  "host_model_test.pdb"
  "host_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
