# Empty dependencies file for host_model_test.
# This may be replaced when dependencies are built.
