# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/date_test[1]_include.cmake")
include("/root/repo/build/tests/decimal_test[1]_include.cmake")
include("/root/repo/build/tests/bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/columnstore_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/executor_test[1]_include.cmake")
include("/root/repo/build/tests/dbgen_test[1]_include.cmake")
include("/root/repo/build/tests/queries_test[1]_include.cmake")
include("/root/repo/build/tests/pe_test[1]_include.cmake")
include("/root/repo/build/tests/swissknife_test[1]_include.cmake")
include("/root/repo/build/tests/offload_test[1]_include.cmake")
include("/root/repo/build/tests/task_compiler_test[1]_include.cmake")
include("/root/repo/build/tests/memory_manager_test[1]_include.cmake")
include("/root/repo/build/tests/host_model_test[1]_include.cmake")
include("/root/repo/build/tests/perf_model_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/device_paths_test[1]_include.cmake")
include("/root/repo/build/tests/partition_stress_test[1]_include.cmake")
include("/root/repo/build/tests/reference_answers_test[1]_include.cmake")
include("/root/repo/build/tests/sorter_property_test[1]_include.cmake")
