file(REMOVE_RECURSE
  "CMakeFiles/fig16_tpch.dir/fig16_tpch.cc.o"
  "CMakeFiles/fig16_tpch.dir/fig16_tpch.cc.o.d"
  "fig16_tpch"
  "fig16_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
