# Empty compiler generated dependencies file for fig16_tpch.
# This may be replaced when dependencies are built.
