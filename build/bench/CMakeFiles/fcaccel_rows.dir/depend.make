# Empty dependencies file for fcaccel_rows.
# This may be replaced when dependencies are built.
