file(REMOVE_RECURSE
  "CMakeFiles/fcaccel_rows.dir/fcaccel_rows.cc.o"
  "CMakeFiles/fcaccel_rows.dir/fcaccel_rows.cc.o.d"
  "fcaccel_rows"
  "fcaccel_rows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcaccel_rows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
