# Empty compiler generated dependencies file for fig17_validation.
# This may be replaced when dependencies are built.
