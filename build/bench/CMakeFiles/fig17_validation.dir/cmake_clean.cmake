file(REMOVE_RECURSE
  "CMakeFiles/fig17_validation.dir/fig17_validation.cc.o"
  "CMakeFiles/fig17_validation.dir/fig17_validation.cc.o.d"
  "fig17_validation"
  "fig17_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
