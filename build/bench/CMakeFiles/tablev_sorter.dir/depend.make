# Empty dependencies file for tablev_sorter.
# This may be replaced when dependencies are built.
