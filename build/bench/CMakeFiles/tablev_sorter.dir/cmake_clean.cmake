file(REMOVE_RECURSE
  "CMakeFiles/tablev_sorter.dir/tablev_sorter.cc.o"
  "CMakeFiles/tablev_sorter.dir/tablev_sorter.cc.o.d"
  "tablev_sorter"
  "tablev_sorter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tablev_sorter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
