# Empty dependencies file for offload_classes.
# This may be replaced when dependencies are built.
