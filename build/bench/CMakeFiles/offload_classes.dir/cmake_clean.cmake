file(REMOVE_RECURSE
  "CMakeFiles/offload_classes.dir/offload_classes.cc.o"
  "CMakeFiles/offload_classes.dir/offload_classes.cc.o.d"
  "offload_classes"
  "offload_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
