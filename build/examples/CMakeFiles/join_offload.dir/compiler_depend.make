# Empty compiler generated dependencies file for join_offload.
# This may be replaced when dependencies are built.
