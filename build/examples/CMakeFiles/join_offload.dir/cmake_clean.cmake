file(REMOVE_RECURSE
  "CMakeFiles/join_offload.dir/join_offload.cpp.o"
  "CMakeFiles/join_offload.dir/join_offload.cpp.o.d"
  "join_offload"
  "join_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
