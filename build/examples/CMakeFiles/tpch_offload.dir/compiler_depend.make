# Empty compiler generated dependencies file for tpch_offload.
# This may be replaced when dependencies are built.
