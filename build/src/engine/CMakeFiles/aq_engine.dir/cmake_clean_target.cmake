file(REMOVE_RECURSE
  "libaq_engine.a"
)
