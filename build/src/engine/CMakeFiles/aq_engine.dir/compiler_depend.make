# Empty compiler generated dependencies file for aq_engine.
# This may be replaced when dependencies are built.
