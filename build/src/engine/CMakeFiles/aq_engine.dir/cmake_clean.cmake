file(REMOVE_RECURSE
  "CMakeFiles/aq_engine.dir/executor.cc.o"
  "CMakeFiles/aq_engine.dir/executor.cc.o.d"
  "libaq_engine.a"
  "libaq_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
