# CMake generated Testfile for 
# Source directory: /root/repo/src/aquoman
# Build directory: /root/repo/build/src/aquoman
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
