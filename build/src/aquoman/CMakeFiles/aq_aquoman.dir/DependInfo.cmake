
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aquoman/device.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/device.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/device.cc.o.d"
  "/root/repo/src/aquoman/pe.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/pe.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/pe.cc.o.d"
  "/root/repo/src/aquoman/swissknife/bitonic.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/bitonic.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/bitonic.cc.o.d"
  "/root/repo/src/aquoman/swissknife/groupby.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/groupby.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/groupby.cc.o.d"
  "/root/repo/src/aquoman/swissknife/merger.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/merger.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/merger.cc.o.d"
  "/root/repo/src/aquoman/swissknife/streaming_sorter.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/streaming_sorter.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/streaming_sorter.cc.o.d"
  "/root/repo/src/aquoman/swissknife/topk.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/topk.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/swissknife/topk.cc.o.d"
  "/root/repo/src/aquoman/task_compiler.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/task_compiler.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/task_compiler.cc.o.d"
  "/root/repo/src/aquoman/transform_compiler.cc" "src/aquoman/CMakeFiles/aq_aquoman.dir/transform_compiler.cc.o" "gcc" "src/aquoman/CMakeFiles/aq_aquoman.dir/transform_compiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relalg/CMakeFiles/aq_relalg.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/aq_engine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
