# Empty dependencies file for aq_aquoman.
# This may be replaced when dependencies are built.
