file(REMOVE_RECURSE
  "libaq_aquoman.a"
)
