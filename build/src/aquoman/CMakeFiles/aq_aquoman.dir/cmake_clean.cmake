file(REMOVE_RECURSE
  "CMakeFiles/aq_aquoman.dir/device.cc.o"
  "CMakeFiles/aq_aquoman.dir/device.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/pe.cc.o"
  "CMakeFiles/aq_aquoman.dir/pe.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/swissknife/bitonic.cc.o"
  "CMakeFiles/aq_aquoman.dir/swissknife/bitonic.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/swissknife/groupby.cc.o"
  "CMakeFiles/aq_aquoman.dir/swissknife/groupby.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/swissknife/merger.cc.o"
  "CMakeFiles/aq_aquoman.dir/swissknife/merger.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/swissknife/streaming_sorter.cc.o"
  "CMakeFiles/aq_aquoman.dir/swissknife/streaming_sorter.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/swissknife/topk.cc.o"
  "CMakeFiles/aq_aquoman.dir/swissknife/topk.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/task_compiler.cc.o"
  "CMakeFiles/aq_aquoman.dir/task_compiler.cc.o.d"
  "CMakeFiles/aq_aquoman.dir/transform_compiler.cc.o"
  "CMakeFiles/aq_aquoman.dir/transform_compiler.cc.o.d"
  "libaq_aquoman.a"
  "libaq_aquoman.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_aquoman.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
