
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relalg/eval.cc" "src/relalg/CMakeFiles/aq_relalg.dir/eval.cc.o" "gcc" "src/relalg/CMakeFiles/aq_relalg.dir/eval.cc.o.d"
  "/root/repo/src/relalg/expr.cc" "src/relalg/CMakeFiles/aq_relalg.dir/expr.cc.o" "gcc" "src/relalg/CMakeFiles/aq_relalg.dir/expr.cc.o.d"
  "/root/repo/src/relalg/plan.cc" "src/relalg/CMakeFiles/aq_relalg.dir/plan.cc.o" "gcc" "src/relalg/CMakeFiles/aq_relalg.dir/plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
