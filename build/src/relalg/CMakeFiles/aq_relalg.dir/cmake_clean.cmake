file(REMOVE_RECURSE
  "CMakeFiles/aq_relalg.dir/eval.cc.o"
  "CMakeFiles/aq_relalg.dir/eval.cc.o.d"
  "CMakeFiles/aq_relalg.dir/expr.cc.o"
  "CMakeFiles/aq_relalg.dir/expr.cc.o.d"
  "CMakeFiles/aq_relalg.dir/plan.cc.o"
  "CMakeFiles/aq_relalg.dir/plan.cc.o.d"
  "libaq_relalg.a"
  "libaq_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
