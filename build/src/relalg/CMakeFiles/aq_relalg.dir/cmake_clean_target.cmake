file(REMOVE_RECURSE
  "libaq_relalg.a"
)
