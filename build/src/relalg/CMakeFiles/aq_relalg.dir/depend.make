# Empty dependencies file for aq_relalg.
# This may be replaced when dependencies are built.
