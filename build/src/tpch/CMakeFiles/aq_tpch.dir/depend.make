# Empty dependencies file for aq_tpch.
# This may be replaced when dependencies are built.
