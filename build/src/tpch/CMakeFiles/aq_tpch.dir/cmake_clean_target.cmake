file(REMOVE_RECURSE
  "libaq_tpch.a"
)
