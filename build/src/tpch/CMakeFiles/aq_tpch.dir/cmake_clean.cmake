file(REMOVE_RECURSE
  "CMakeFiles/aq_tpch.dir/dbgen.cc.o"
  "CMakeFiles/aq_tpch.dir/dbgen.cc.o.d"
  "CMakeFiles/aq_tpch.dir/queries.cc.o"
  "CMakeFiles/aq_tpch.dir/queries.cc.o.d"
  "CMakeFiles/aq_tpch.dir/text_pool.cc.o"
  "CMakeFiles/aq_tpch.dir/text_pool.cc.o.d"
  "libaq_tpch.a"
  "libaq_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aq_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
